#include "gendpr/session.hpp"

#include <string>
#include <utility>

#include "common/log.hpp"
#include "common/stopwatch.hpp"
#include "crypto/aead.hpp"
#include "genome/kernels/kernels.hpp"

namespace gendpr::core {

using common::Errc;
using common::make_error;
using common::Result;
using common::Status;
using common::Stopwatch;

namespace {

/// True for failures that mean "this peer is gone", as opposed to protocol
/// or crypto violations that must abort the study.
bool is_peer_loss(const common::Error& error) {
  return error.code == Errc::unknown_peer || error.code == Errc::io_error;
}

/// Serializes `msg` with its envelope type byte straight into a pooled
/// record buffer (at its final wire position, after the frame/seq headroom)
/// and seals it in place: one serialization, zero payload copies.
common::Status seal_enveloped(tee::SecureChannel& channel,
                              wire::BufferPool& pool, MsgType type,
                              MessageRef msg, wire::WireBuffer& out) {
  out = wire::WireBuffer::for_record(pool, 1 + msg.encoded_size());
  wire::Writer w(std::move(out).release_storage());
  w.u8(static_cast<std::uint8_t>(type));
  msg.serialize_into(w);
  out.adopt_storage(std::move(w).take());
  return channel.seal_in_place(out);
}

/// Serializes `msg` once for fan-out; every recipient then costs only a
/// seal_from (AEAD pass into its own pooled buffer).
StagedMessage stage_envelope(MsgType type, MessageRef msg) {
  StagedMessage staging;
  wire::Writer w;
  w.reserve(1 + msg.encoded_size());
  w.u8(static_cast<std::uint8_t>(type));
  msg.serialize_into(w);
  staging.bytes = std::move(w).take();
  return staging;
}

}  // namespace

// ---------------------------------------------------------------------------
// ProtocolSession: driver surface + coroutine plumbing
// ---------------------------------------------------------------------------

void ProtocolSession::Main::promise_type::return_value(
    common::Status status) noexcept {
  session->finish(std::move(status));
}

void ProtocolSession::Main::promise_type::unhandled_exception() noexcept {
  // Protocol bodies signal failures through Status; an escaping exception is
  // a bug, but the session must still reach a terminal state so drivers
  // (and fuzzers) never hang on it.
  try {
    throw;
  } catch (const std::exception& e) {
    session->finish(make_error(
        Errc::state_violation,
        std::string("protocol session terminated by exception: ") + e.what()));
  } catch (...) {
    session->finish(make_error(Errc::state_violation,
                               "protocol session terminated by exception"));
  }
}

ProtocolSession::~ProtocolSession() { destroy_coroutine(); }

void ProtocolSession::start(TimePoint now) {
  if (wants_ != SessionWants::idle) return;
  now_ = now;
  main_ = run_protocol();
  main_.handle().promise().session = this;
  main_.handle().resume();
}

void ProtocolSession::on_frame(std::uint32_t from_gdo, common::Bytes payload,
                               TimePoint now) {
  now_ = now;
  input_queue_.push_back(InFrame{from_gdo, std::move(payload)});
  if (wants_ != SessionWants::recv) return;  // buffered like a mailbox
  deliver_queued_frame();
}

void ProtocolSession::on_frame(std::uint32_t from_gdo,
                               common::BytesView payload, TimePoint now) {
  now_ = now;
  if (wants_ == SessionWants::recv && input_queue_.empty()) {
    // Direct handoff: the protocol body consumes the view (decrypts or
    // parses it) before this call returns, so no owning copy is needed.
    Event event;
    event.kind = Event::Kind::frame;
    event.from_gdo = from_gdo;
    event.payload = payload;
    deliver_event(std::move(event));
    return;
  }
  input_queue_.push_back(
      InFrame{from_gdo, common::Bytes(payload.begin(), payload.end())});
  if (wants_ != SessionWants::recv) return;
  deliver_queued_frame();
}

void ProtocolSession::deliver_queued_frame() {
  Event event;
  event.kind = Event::Kind::frame;
  event.from_gdo = input_queue_.front().from_gdo;
  event.owned = std::move(input_queue_.front().payload);
  event.payload = common::BytesView(event.owned.data(), event.owned.size());
  input_queue_.pop_front();
  deliver_event(std::move(event));
}

void ProtocolSession::on_tick(TimePoint now) {
  now_ = now;
  if (wants_ != SessionWants::recv) return;
  if (!wait_deadline_.has_value() || now < *wait_deadline_) return;
  deliver_event(Event{Event::Kind::timeout, 0, {}, {}});
}

void ProtocolSession::on_peer_lost(std::uint32_t gdo_index, TimePoint now) {
  now_ = now;
  lost_peers_.insert(gdo_index);
  if (wants_ == SessionWants::recv) {
    deliver_event(Event{Event::Kind::wake, 0, {}, {}});
  } else {
    lost_wake_pending_ = true;
  }
}

void ProtocolSession::on_transport_closed(TimePoint now) {
  now_ = now;
  closed_ = true;
  if (wants_ == SessionWants::recv) {
    deliver_event(Event{Event::Kind::closed, 0, {}, {}});
  }
}

void ProtocolSession::on_sends_complete(std::vector<SendFailure> failures,
                                        TimePoint now) {
  now_ = now;
  if (wants_ != SessionWants::send) return;
  outbox_.clear();  // anything the driver chose not to take is gone
  send_failures_ = std::move(failures);
  auto handle = std::exchange(resume_, {});
  if (!handle) return;
  handle.resume();
}

std::vector<OutFrame> ProtocolSession::take_output() {
  return std::exchange(outbox_, {});
}

std::vector<OutFrame> ProtocolSession::step(std::vector<InFrame> frames,
                                            TimePoint now) {
  std::vector<OutFrame> emitted;
  if (wants_ == SessionWants::idle) start(now);
  std::size_t next = 0;
  for (;;) {
    if (wants_ == SessionWants::send) {
      for (OutFrame& frame : take_output()) emitted.push_back(std::move(frame));
      on_sends_complete({}, now);
      continue;
    }
    if (wants_ == SessionWants::recv && next < frames.size()) {
      InFrame& frame = frames[next++];
      on_frame(frame.from_gdo, std::move(frame.payload), now);
      continue;
    }
    break;
  }
  return emitted;
}

void ProtocolSession::queue_frame(std::uint32_t to_gdo,
                                  wire::WireBuffer payload) {
  outbox_.push_back(OutFrame{to_gdo, std::move(payload)});
}

void ProtocolSession::queue_frame(std::uint32_t to_gdo, common::Bytes payload) {
  queue_frame(to_gdo,
              wire::WireBuffer::from_payload(
                  wire_pool(),
                  common::BytesView(payload.data(), payload.size())));
}

std::set<std::uint32_t> ProtocolSession::take_lost_peers() {
  lost_wake_pending_ = false;
  return std::exchange(lost_peers_, {});
}

void ProtocolSession::finish(common::Status status) noexcept {
  status_ = std::move(status);
  wants_ = status_.ok() ? SessionWants::done : SessionWants::failed;
  resume_ = {};
  wait_deadline_.reset();
}

bool ProtocolSession::input_ready() noexcept {
  if (!input_queue_.empty()) {
    Event event;
    event.kind = Event::Kind::frame;
    event.from_gdo = input_queue_.front().from_gdo;
    event.owned = std::move(input_queue_.front().payload);
    event.payload = common::BytesView(event.owned.data(), event.owned.size());
    input_queue_.pop_front();
    pending_event_ = std::move(event);
    return true;
  }
  if (lost_wake_pending_) {
    lost_wake_pending_ = false;
    pending_event_ = Event{Event::Kind::wake, 0, {}, {}};
    return true;
  }
  if (closed_) {
    pending_event_ = Event{Event::Kind::closed, 0, {}, {}};
    return true;
  }
  return false;
}

void ProtocolSession::suspend_for_input(std::coroutine_handle<> handle) noexcept {
  resume_ = handle;
  wants_ = SessionWants::recv;
  // Fresh deadline per wait: the same per-call semantics the blocking loops
  // got from Mailbox::receive_for(receive_timeout_).
  if (receive_timeout_ > std::chrono::milliseconds{0}) {
    wait_deadline_ = now_ + receive_timeout_;
  } else {
    wait_deadline_.reset();
  }
}

void ProtocolSession::suspend_for_sends(std::coroutine_handle<> handle) noexcept {
  resume_ = handle;
  wants_ = SessionWants::send;
}

void ProtocolSession::deliver_event(Event event) {
  auto handle = std::exchange(resume_, {});
  if (!handle) return;
  pending_event_ = std::move(event);
  wait_deadline_.reset();
  handle.resume();
}

// ---------------------------------------------------------------------------
// MemberSession
// ---------------------------------------------------------------------------

MemberSession::MemberSession(tee::Platform& platform, std::uint32_t gdo_index,
                             std::uint32_t leader_gdo,
                             genome::GenotypeMatrix cases)
    : gdo_index_(gdo_index),
      leader_gdo_(leader_gdo),
      enclave_(platform, gdo_index) {
  provision_status_ = enclave_.provision_dataset(std::move(cases));
}

MemberSession::~MemberSession() { destroy_coroutine(); }

common::Error MemberSession::wait_error(bool timed_out,
                                        const char* where) const {
  // Translates a bounded-wait failure into the member's study status:
  // expiry names the leader (the only peer this node waits on).
  if (timed_out) {
    return make_error(Errc::timeout,
                      "gdo " + std::to_string(gdo_index_) + ": leader gdo " +
                          std::to_string(leader_gdo_) + " unresponsive (" +
                          where + " deadline expired)");
  }
  return make_error(Errc::state_violation,
                    std::string("mailbox closed ") + where);
}

common::Task<Status> MemberSession::send_reply(MsgType type, MessageRef msg) {
  wire::WireBuffer record;
  if (Status s = seal_enveloped(*channel_, wire_pool(), type, msg, record);
      !s.ok()) {
    co_return s;
  }
  obs::add_counter(obs_, "wire.serializations");
  obs::add_counter(obs_, "wire.records_sent");
  queue_frame(leader_gdo_, std::move(record));
  const std::vector<SendFailure> failures = co_await flush_sends();
  if (!failures.empty()) co_return failures.front().error;
  co_return Status::success();
}

ProtocolSession::Main MemberSession::run_protocol() {
  if (!provision_status_.ok()) co_return provision_status_;

  // Attested handshake: member initiates toward the leader's enclave. The
  // blocking node never checked this send's status; delivery failures keep
  // surfacing as a handshake wait timeout instead.
  channel_ = enclave_.channel_to(trusted_module_measurement(),
                                 /*initiator=*/true);
  queue_frame(leader_gdo_, channel_->handshake_message());
  (void)co_await flush_sends();
  Event handshake = co_await wait_input();
  while (handshake.kind == Event::Kind::wake) {
    handshake = co_await wait_input();
  }
  if (handshake.kind != Event::Kind::frame) {
    co_return wait_error(handshake.kind == Event::Kind::timeout,
                         "in handshake");
  }
  if (Status s = channel_->complete(handshake.payload); !s.ok()) co_return s;
  common::log_debug("member", "gdo ", gdo_index_, " channel established");

  // Serve phase requests until the study completes. One scratch buffer is
  // reused across records so the hot loop does not allocate per message.
  common::Bytes plaintext_scratch;
  while (!enclave_.study_complete()) {
    Event message = co_await wait_input();
    while (message.kind == Event::Kind::wake) {
      message = co_await wait_input();
    }
    if (message.kind != Event::Kind::frame) {
      co_return wait_error(message.kind == Event::Kind::timeout, "mid-study");
    }
    if (Status s = channel_->open_to(message.payload, plaintext_scratch);
        !s.ok()) {
      co_return s;
    }
    auto opened = open_envelope(plaintext_scratch);
    if (!opened.ok()) co_return opened.error();
    const MsgType type = opened.value().first;
    const common::BytesView body = opened.value().second;
    obs::add_counter(obs_,
                     "member." + std::to_string(gdo_index_) + ".requests");

    switch (type) {
      case MsgType::study_announce: {
        auto announce = StudyAnnounce::deserialize(body);
        if (!announce.ok()) co_return announce.error();
        if (Status s = enclave_.on_study_announce(announce.value()); !s.ok()) {
          co_return s;
        }
        // One summary per tile of the announce-derived plan (a single tile
        // when tiling is off). Each reply goes out as soon as its tile is
        // counted, so the leader assesses tile k while this member is still
        // computing tile k+1.
        const genome::TilePlan plan = genome::TilePlan::over(
            announce.value().num_snps, announce.value().config.snp_tile_width);
        for (std::uint32_t k = 0; k < plan.tile_count(); ++k) {
          const Stopwatch compute_watch;
          const SummaryStats stats =
              enclave_.make_summary_tile(plan.begin(k), plan.end(k), k);
          compute_ms_ += compute_watch.elapsed_ms();
          if (Status s = co_await send_reply(MsgType::summary_stats, stats);
              !s.ok()) {
            co_return s;
          }
        }
        break;
      }
      case MsgType::phase1_result: {
        auto result = Phase1Result::deserialize(body);
        if (!result.ok()) co_return result.error();
        if (Status s = enclave_.on_phase1(result.value()); !s.ok()) {
          co_return s;
        }
        break;
      }
      case MsgType::moments_request: {
        auto request = MomentsRequest::deserialize(body);
        if (!request.ok()) co_return request.error();
        const Stopwatch compute_watch;
        auto response = enclave_.on_moments_request(request.value());
        compute_ms_ += compute_watch.elapsed_ms();
        if (!response.ok()) co_return response.error();
        if (Status s = co_await send_reply(MsgType::moments_response,
                                           response.value());
            !s.ok()) {
          co_return s;
        }
        break;
      }
      case MsgType::phase2_result: {
        auto result = Phase2Result::deserialize(body);
        if (!result.ok()) co_return result.error();
        const Stopwatch compute_watch;
        auto matrices = enclave_.on_phase2(result.value(), pool_);
        compute_ms_ += compute_watch.elapsed_ms();
        if (!matrices.ok()) co_return matrices.error();
        // One basis build per tile iff this GDO sat in any live combination,
        // plus one basis-times-weights derivation per entry. The per-tile
        // basis bounds this member's transient EPC footprint at O(tile).
        // Under the intersection-aware sweep only the chain head is a full
        // derivation; the rest are in-place delta updates.
        if (!matrices.value().entries.empty()) {
          obs::add_counter(obs_, "lr.basis_builds");
          if (enclave_.prune_enabled()) {
            obs::add_counter(obs_, "lr.combination_matvecs");
            obs::add_counter(obs_, "lr.combination_delta_updates",
                             matrices.value().entries.size() - 1);
          } else {
            obs::add_counter(obs_, "lr.combination_matvecs",
                             matrices.value().entries.size());
          }
        }
        obs::max_gauge(obs_, "epc.member.peak_bytes",
                       static_cast<double>(enclave_.platform().epc().peak()));
        if (Status s = co_await send_reply(MsgType::lr_matrices,
                                           matrices.value());
            !s.ok()) {
          co_return s;
        }
        break;
      }
      case MsgType::phase3_result: {
        auto result = Phase3Result::deserialize(body);
        if (!result.ok()) co_return result.error();
        if (Status s = enclave_.on_phase3(result.value()); !s.ok()) {
          co_return s;
        }
        break;
      }
      case MsgType::abort_notice: {
        auto notice = AbortNotice::deserialize(body);
        if (!notice.ok()) co_return notice.error();
        std::string reason = "study aborted by leader";
        if (notice.value().failed_gdo != AbortNotice::kNoFailedGdo) {
          reason += " (gdo " + std::to_string(notice.value().failed_gdo) +
                    " unresponsive)";
        }
        reason += ": " + notice.value().reason;
        co_return make_error(Errc::aborted, std::move(reason));
      }
      default:
        co_return make_error(Errc::bad_message, "unexpected message type");
    }
  }
  obs::observe(obs_, "member.compute_ms", compute_ms_);
  co_return Status::success();
}

// ---------------------------------------------------------------------------
// LeaderSession
// ---------------------------------------------------------------------------

LeaderSession::LeaderSession(tee::Platform& platform, std::uint32_t gdo_index,
                             std::uint32_t num_gdos,
                             genome::GenotypeMatrix cases,
                             genome::GenotypeMatrix reference,
                             StudyAnnounce announce)
    : gdo_index_(gdo_index),
      num_gdos_(num_gdos),
      enclave_(platform, gdo_index),
      coordinator_(enclave_, std::move(reference), num_gdos,
                   std::move(announce)),
      channels_(num_gdos) {
  // Provisioning failures (EPC limit) surface from the protocol body, which
  // checks that the dataset is present before announcing.
  provision_status_ = enclave_.provision_dataset(std::move(cases));
}

LeaderSession::~LeaderSession() { destroy_coroutine(); }

void LeaderSession::sync_dead_peers() {
  for (std::uint32_t gdo : take_lost_peers()) {
    if (coordinator_.dead_gdos().count(gdo) != 0) continue;
    common::log_warn("leader", "connection to gdo ", gdo,
                     " lost; marking unresponsive");
    (void)coordinator_.mark_gdo_dead(gdo);
  }
}

void LeaderSession::mark_pending_dead(std::set<std::uint32_t>& pending,
                                      const char* phase) {
  for (std::uint32_t gdo : pending) {
    common::log_warn("leader", phase, ": gdo ", gdo,
                     " unresponsive (deadline expired); marking dead");
    (void)coordinator_.mark_gdo_dead(gdo);
  }
  pending.clear();
}

common::Error LeaderSession::dead_peers_error(const char* phase) const {
  std::string message(phase);
  message += " timed out: unresponsive gdo(s):";
  for (std::uint32_t gdo : coordinator_.dead_gdos()) {
    message += ' ';
    message += std::to_string(gdo);
  }
  return make_error(Errc::timeout, std::move(message));
}

std::set<std::uint32_t> LeaderSession::live_members() const {
  std::set<std::uint32_t> members;
  for (std::uint32_t g = 0; g < num_gdos_; ++g) {
    if (g == gdo_index_ || channels_[g] == nullptr) continue;
    if (coordinator_.dead_gdos().count(g) != 0) continue;
    members.insert(g);
  }
  return members;
}

common::Task<Status> LeaderSession::establish_channels() {
  std::set<std::uint32_t> pending;
  for (std::uint32_t g = 0; g < num_gdos_; ++g) {
    if (g != gdo_index_) pending.insert(g);
  }
  for (;;) {
    sync_dead_peers();
    for (std::uint32_t gdo : coordinator_.dead_gdos()) pending.erase(gdo);
    if (pending.empty()) break;
    Event event = co_await wait_input();
    if (event.kind == Event::Kind::wake) continue;
    if (event.kind == Event::Kind::timeout) {
      mark_pending_dead(pending, "handshake");
      break;
    }
    if (event.kind == Event::Kind::closed) {
      co_return make_error(Errc::state_violation, "mailbox closed in handshake");
    }
    const std::uint32_t member = event.from_gdo;
    if (member >= num_gdos_ || member == gdo_index_) {
      co_return make_error(Errc::unknown_peer, "handshake from unknown node");
    }
    if (coordinator_.dead_gdos().count(member) != 0) continue;
    auto channel = enclave_.channel_to(trusted_module_measurement(),
                                       /*initiator=*/false);
    if (Status s = channel->complete(event.payload); !s.ok()) co_return s;
    queue_frame(member, channel->handshake_message());
    bool lost = false;
    for (const SendFailure& failure : co_await flush_sends()) {
      if (failure.to_gdo != member) continue;
      if (!is_peer_loss(failure.error)) co_return Status(failure.error);
      lost = true;
    }
    if (lost) {
      // The member vanished between handshake halves.
      (void)coordinator_.mark_gdo_dead(member);
      pending.erase(member);
      continue;
    }
    channels_[member] = std::move(channel);
    pending.erase(member);
  }
  // Any established channel is reachable for abort notices from here on,
  // even if the handshake round itself ends in a timeout below.
  channels_established_ = true;
  if (coordinator_.live_combination_count() == 0) {
    co_return dead_peers_error("handshake");
  }
  co_return Status::success();
}

common::Task<Status> LeaderSession::send_record(std::uint32_t gdo_index,
                                                MsgType type, MessageRef msg) {
  if (channels_[gdo_index] == nullptr) {
    co_return make_error(Errc::unknown_peer,
                         "no channel to gdo " + std::to_string(gdo_index));
  }
  wire::WireBuffer record;
  if (Status s = seal_enveloped(*channels_[gdo_index], wire_pool(), type, msg,
                                record);
      !s.ok()) {
    co_return s;
  }
  obs::add_counter(obs_, "wire.serializations");
  obs::add_counter(obs_, "wire.records_sent");
  queue_frame(gdo_index, std::move(record));
  const std::vector<SendFailure> failures = co_await flush_sends();
  for (const SendFailure& failure : failures) {
    if (failure.to_gdo == gdo_index) co_return Status(failure.error);
  }
  co_return Status::success();
}

common::Task<Status> LeaderSession::send_staged(std::uint32_t gdo_index,
                                                StagedMessage& staging) {
  if (channels_[gdo_index] == nullptr) {
    co_return make_error(Errc::unknown_peer,
                         "no channel to gdo " + std::to_string(gdo_index));
  }
  wire::WireBuffer record;
  if (Status s = channels_[gdo_index]->seal_from(
          wire_pool(),
          common::BytesView(staging.bytes.data(), staging.bytes.size()),
          record);
      !s.ok()) {
    co_return s;
  }
  // The first recipient pays for the (single) serialization; every further
  // one is a pure fan-out reuse. Counted lazily at seal time so the
  // conservation law serializations + fanout_reuses == records_sent holds
  // even for staged messages that end up with no recipients.
  if (staging.sealed_once) {
    obs::add_counter(obs_, "wire.fanout_reuses");
  } else {
    staging.sealed_once = true;
    obs::add_counter(obs_, "wire.serializations");
  }
  obs::add_counter(obs_, "wire.records_sent");
  queue_frame(gdo_index, std::move(record));
  const std::vector<SendFailure> failures = co_await flush_sends();
  for (const SendFailure& failure : failures) {
    if (failure.to_gdo == gdo_index) co_return Status(failure.error);
  }
  co_return Status::success();
}

common::Task<Status> LeaderSession::broadcast(MsgType type, MessageRef msg) {
  sync_dead_peers();
  StagedMessage staging = stage_envelope(type, msg);
  for (std::uint32_t g : live_members()) {
    Status s = co_await send_staged(g, staging);
    if (s.ok()) continue;
    if (!is_peer_loss(s.error())) co_return s;
    common::log_warn("leader", "send to gdo ", g,
                     " failed: ", s.error().to_string());
    (void)coordinator_.mark_gdo_dead(g);
  }
  if (coordinator_.live_combination_count() == 0) {
    co_return dead_peers_error("broadcast");
  }
  co_return Status::success();
}

common::Task<void> LeaderSession::broadcast_abort(common::Error error) {
  AbortNotice notice;
  const auto& dead = coordinator_.dead_gdos();
  if (!dead.empty()) notice.failed_gdo = *dead.begin();
  notice.reason = error.to_string();
  StagedMessage staging = stage_envelope(MsgType::abort_notice, notice);
  for (std::uint32_t g : live_members()) {
    (void)co_await send_staged(g, staging);  // best effort
  }
}

common::Task<Result<LeaderSession::GatherStep>> LeaderSession::next_record(
    const char* phase, std::set<std::uint32_t>& pending) {
  for (;;) {
    sync_dead_peers();
    for (std::uint32_t gdo : coordinator_.dead_gdos()) pending.erase(gdo);
    if (pending.empty()) co_return GatherStep{};
    Event event = co_await wait_input();
    if (event.kind == Event::Kind::wake) continue;  // losses synced above
    if (event.kind == Event::Kind::timeout) {
      mark_pending_dead(pending, phase);
      co_return GatherStep{};
    }
    if (event.kind == Event::Kind::closed) {
      co_return make_error(Errc::state_violation, "mailbox closed mid-study");
    }
    const std::uint32_t member = event.from_gdo;
    if (member >= num_gdos_) {
      co_return make_error(Errc::unknown_peer, "record from unknown node");
    }
    // A record from a declared-dead member means it was slow, not gone;
    // its combinations are already skipped, so drop the late arrival.
    if (coordinator_.dead_gdos().count(member) != 0) continue;
    if (channels_[member] == nullptr) {
      co_return make_error(Errc::unknown_peer, "record from unknown node");
    }
    auto plaintext = channels_[member]->open(event.payload);
    if (!plaintext.ok()) co_return plaintext.error();
    GatherStep step;
    step.got = true;
    step.member = member;
    step.plaintext = std::move(plaintext).take();
    co_return step;
  }
}

ProtocolSession::Main LeaderSession::run_protocol() {
  auto result = co_await run_study_impl();
  if (!result.ok()) {
    // On failure after channel setup, a best-effort abort notice is sent to
    // the surviving members so they stop waiting instead of running into
    // their own deadlines.
    if (channels_established_) co_await broadcast_abort(result.error());
    co_return Status(result.error());
  }
  result_ = std::move(result).take();
  co_return Status::success();
}

common::Task<Result<StudyResult>> LeaderSession::run_study_impl() {
  const Stopwatch total_watch;
  const crypto::AeadCounters aead_before = crypto::aead_counters();
  PhaseTimings timings;

  if (!provision_status_.ok()) co_return provision_status_.error();
  {
    const obs::ScopedSpan handshake_span(obs::recorder_of(obs_),
                                         "step.handshake", study_span_);
    if (Status s = co_await establish_channels(); !s.ok()) co_return s.error();
  }

  // --- Announce + Phase 1 input gathering ("Data Aggregation"). ---
  obs::ScopedSpan gather_span(obs::recorder_of(obs_), "step.gather_summaries",
                              study_span_);
  Stopwatch aggregation_watch;
  if (Status s = co_await broadcast(MsgType::study_announce,
                                    coordinator_.announce());
      !s.ok()) {
    co_return s.error();
  }
  // Each member streams one summary per tile of the phase-1 plan; a member
  // stays pending until its last tile lands. After every arrival the leader
  // assesses whatever tiles are now complete across all live members, so
  // MAF math overlaps the remaining transfers (the pipelined engine's
  // phase-1 half). Inline assessment time is attributed to indexing, not
  // aggregation, to keep the Figure 5/6 categories honest.
  const std::uint32_t maf_tile_count = coordinator_.maf_plan().tile_count();
  std::vector<std::uint32_t> summary_tiles_left(num_gdos_, maf_tile_count);
  double inline_assess_ms = 0;
  std::size_t maf_tiles_inline = 0;
  std::set<std::uint32_t> pending = live_members();
  // An empty phase-1 plan (zero SNPs) streams no summaries at all.
  if (maf_tile_count == 0) pending.clear();
  while (!pending.empty()) {
    auto step = co_await next_record("data aggregation", pending);
    if (!step.ok()) co_return step.error();
    if (!step.value().got) break;
    auto opened = open_envelope(step.value().plaintext);
    if (!opened.ok()) co_return opened.error();
    if (opened.value().first != MsgType::summary_stats) {
      co_return make_error(Errc::state_violation, "expected summary stats");
    }
    auto stats = SummaryStats::deserialize(opened.value().second);
    if (!stats.ok()) co_return stats.error();
    if (Status s = coordinator_.add_summary(step.value().member,
                                            stats.value());
        !s.ok()) {
      co_return s.error();
    }
    if (--summary_tiles_left[step.value().member] == 0) {
      pending.erase(step.value().member);
    }
    const Stopwatch assess_watch;
    maf_tiles_inline += coordinator_.assess_ready_maf_tiles();
    inline_assess_ms += assess_watch.elapsed_ms();
    if (pending.empty()) break;
  }
  if (coordinator_.live_combination_count() == 0) {
    co_return dead_peers_error("data aggregation");
  }
  timings.aggregation_ms += aggregation_watch.elapsed_ms() - inline_assess_ms;
  timings.indexing_ms += inline_assess_ms;
  obs::observe(obs_, "pipeline.leader_assess_ms", inline_assess_ms);
  obs::add_counter(obs_, "pipeline.maf_tiles_assessed_inline",
                   maf_tiles_inline);
  gather_span.end();

  // --- Phase 1: MAF analysis ("Indexing/Sorting/AlleleFreq."). ---
  Stopwatch indexing_watch;
  auto phase1 = coordinator_.run_maf_phase();
  if (!phase1.ok()) co_return phase1.error();
  timings.indexing_ms += indexing_watch.elapsed_ms();

  aggregation_watch.restart();
  {
    const obs::ScopedSpan broadcast_span(obs::recorder_of(obs_),
                                         "step.broadcast_phase1", study_span_);
    if (Status s = co_await broadcast(MsgType::phase1_result, phase1.value());
        !s.ok()) {
      co_return s.error();
    }
  }
  timings.aggregation_ms += aggregation_watch.elapsed_ms();

  // --- Phase 2: LD analysis. ---
  fetch_wait_ms_ = 0;
  Stopwatch ld_watch;
  auto fetch = [this](const MomentsRequest& request,
                      const std::vector<std::uint32_t>& targets)
      -> common::Task<std::vector<std::optional<stats::LdMoments>>> {
    const Stopwatch fetch_watch;
    std::vector<std::optional<stats::LdMoments>> per_gdo(num_gdos_);
    // One serialization for the whole multicast; each target below costs
    // only its own seal (send_staged).
    StagedMessage staging = stage_envelope(MsgType::moments_request, request);
    sync_dead_peers();
    // The coordinator names the recipients (all live members on a legacy
    // first touch, just the combination at hand under pruning); members that
    // died since the request was composed are dropped here.
    const std::set<std::uint32_t> live = live_members();
    std::set<std::uint32_t> fetch_pending;
    for (std::uint32_t g : targets) {
      if (live.count(g) == 0) continue;
      const Status s = co_await send_staged(g, staging);
      if (!s.ok()) {
        if (!is_peer_loss(s.error())) {
          fetch_error_ = s.error();
          break;
        }
        common::log_warn("leader", "moments request to gdo ", g,
                         " failed: ", s.error().to_string());
        (void)coordinator_.mark_gdo_dead(g);
        continue;
      }
      fetch_pending.insert(g);
    }
    while (!fetch_error_.has_value() && !fetch_pending.empty()) {
      auto step = co_await next_record("LD moments fetch", fetch_pending);
      if (!step.ok()) {
        fetch_error_ = step.error();
        break;
      }
      if (!step.value().got) break;
      auto opened = open_envelope(step.value().plaintext);
      if (!opened.ok()) {
        fetch_error_ = opened.error();
        break;
      }
      if (opened.value().first != MsgType::moments_response) {
        fetch_error_ =
            make_error(Errc::state_violation, "expected moments response");
        break;
      }
      auto response = MomentsResponse::deserialize(opened.value().second);
      if (!response.ok()) {
        fetch_error_ = response.error();
        break;
      }
      per_gdo[step.value().member] = response.value().moments;
      fetch_pending.erase(step.value().member);
    }
    fetch_wait_ms_ += fetch_watch.elapsed_ms();
    co_return per_gdo;
  };
  auto phase2 = co_await coordinator_.run_ld_phase_async(fetch);
  if (fetch_error_.has_value()) co_return *fetch_error_;
  if (!phase2.ok()) co_return phase2.error();
  timings.ld_ms += ld_watch.elapsed_ms() - fetch_wait_ms_;
  timings.aggregation_ms += fetch_wait_ms_;
  obs::observe(obs_, "leader.ld_fetch_wait_ms", fetch_wait_ms_);

  aggregation_watch.restart();
  obs::ScopedSpan lr_gather_span(obs::recorder_of(obs_),
                                 "step.gather_lr_matrices", study_span_);
  // Phase-2 inputs go out as one self-contained message per tile of the
  // phase-3 plan (a single message when tiling is off): each body is
  // O(G·tile) with per-GDO counts. Members start deriving on their own
  // threads as soon as tile 0 lands, so the leader's own per-tile
  // derivations right after the broadcast overlap the members' work.
  std::uint64_t phase2_body_bytes = 0;
  for (const Phase2Result& tile : coordinator_.phase2_tiles()) {
    const std::size_t body_size = tile.encoded_size();
    phase2_body_bytes += body_size;
    obs::add_counter(obs_, "leader.phase2_body_bytes", body_size);
    obs::add_counter(obs_, "leader.phase2_broadcast_bytes",
                     body_size * live_members().size());
    if (Status s = co_await broadcast(MsgType::phase2_result, tile); !s.ok()) {
      co_return s.error();
    }
  }

  // --- Phase 3: derive leader tiles, gather LR matrices, select. ---
  const Stopwatch lr_derive_watch;
  if (Status s = coordinator_.derive_leader_lr_tiles(); !s.ok()) {
    co_return s.error();
  }
  const double lr_derive_ms = lr_derive_watch.elapsed_ms();
  obs::observe(obs_, "pipeline.lr_derive_ms", lr_derive_ms);

  // Each member answers every phase-2 tile with one LrMatrices reply.
  const std::uint32_t lr_tile_count = coordinator_.lr_plan().tile_count();
  std::vector<std::uint32_t> lr_tiles_left(num_gdos_, lr_tile_count);
  pending = live_members();
  // An empty phase-3 plan (every SNP filtered before the LR test) was never
  // broadcast, so members have nothing to answer.
  if (lr_tile_count == 0) pending.clear();
  while (!pending.empty()) {
    auto step = co_await next_record("LR gather", pending);
    if (!step.ok()) co_return step.error();
    if (!step.value().got) break;
    auto opened = open_envelope(step.value().plaintext);
    if (!opened.ok()) co_return opened.error();
    if (opened.value().first != MsgType::lr_matrices) {
      co_return make_error(Errc::state_violation, "expected LR matrices");
    }
    auto matrices = LrMatrices::deserialize(opened.value().second);
    if (!matrices.ok()) co_return matrices.error();
    if (Status s = coordinator_.add_lr_matrices(step.value().member,
                                                matrices.value());
        !s.ok()) {
      co_return s.error();
    }
    if (--lr_tiles_left[step.value().member] == 0) {
      pending.erase(step.value().member);
    }
    if (pending.empty()) break;
  }
  timings.aggregation_ms += aggregation_watch.elapsed_ms() - lr_derive_ms;
  timings.lr_ms += lr_derive_ms;
  lr_gather_span.end();

  Stopwatch lr_watch;
  auto phase3 = coordinator_.run_lr_phase(pool_);
  if (!phase3.ok()) co_return phase3.error();
  timings.lr_ms += lr_watch.elapsed_ms();

  aggregation_watch.restart();
  {
    const obs::ScopedSpan broadcast_span(obs::recorder_of(obs_),
                                         "step.broadcast_phase3", study_span_);
    if (Status s = co_await broadcast(MsgType::phase3_result, phase3.value());
        !s.ok()) {
      co_return s.error();
    }
  }
  timings.aggregation_ms += aggregation_watch.elapsed_ms();
  timings.total_ms = total_watch.elapsed_ms();

  StudyResult result;
  result.outcome = coordinator_.outcome();
  result.timings = timings;
  result.dead_gdos.assign(coordinator_.dead_gdos().begin(),
                          coordinator_.dead_gdos().end());
  result.leader_gdo = gdo_index_;
  result.num_gdos = num_gdos_;
  result.num_combinations = coordinator_.announce().combinations.size();
  result.live_combinations = coordinator_.live_combination_count();
  result.combination_members_total = coordinator_.combination_members_total();
  result.phase2_body_bytes = phase2_body_bytes;
  result.ld_pairs_fetched = coordinator_.ld_pairs_fetched();
  // network_bytes_total / leader_bytes_received / network_links belong to
  // the transport meter; the driver fills them after the session finishes.
  const tee::EpcMeter& epc = enclave_.platform().epc();
  result.epc_peak_per_gdo.assign(num_gdos_, 0);
  result.epc_peak_per_gdo[gdo_index_] = epc.peak();
  result.epc_limit_bytes = epc.limit();
  result.epc_peak_leader = epc.peak();
  // In-process federations overwrite these with a run-wide delta; for a
  // standalone (TCP) leader this process-local delta is the leader's own
  // sealing volume.
  const crypto::AeadCounters aead_after = crypto::aead_counters();
  result.crypto_backend =
      crypto::aead_backend_name(crypto::default_aead_backend());
  result.crypto_records_sealed =
      aead_after.records_sealed - aead_before.records_sealed;
  result.crypto_bytes_sealed =
      aead_after.bytes_sealed - aead_before.bytes_sealed;
  result.kernel_backend = genome::kernels::kernel_backend_name(
      genome::kernels::active_kernel_backend());
  result.snp_tile_width = coordinator_.announce().config.snp_tile_width;
  result.maf_tiles = maf_tile_count;
  result.lr_tiles = lr_tile_count;
  result.maf_tiles_assessed_inline = maf_tiles_inline;
  result.leader_inline_assess_ms = inline_assess_ms;
  result.leader_lr_derive_ms = lr_derive_ms;
  result.pruning = coordinator_.pruning_stats();
  if (obs_ != nullptr) {
    // Counters are exported by the federation runner from a run-wide delta
    // (which also covers provisioning-time sealing); only the label is set
    // here so standalone-leader reports still name their backend.
    obs_->metrics.set_label("crypto.backend", result.crypto_backend);
    obs_->metrics.set_label("kernel.backend", result.kernel_backend);
    obs_->metrics.set_gauge("tiles.width",
                            static_cast<double>(result.snp_tile_width));
    obs_->metrics.set_gauge("tiles.count",
                            static_cast<double>(result.maf_tiles));
    obs_->metrics.set_gauge("tiles.lr_count",
                            static_cast<double>(result.lr_tiles));
    obs_->metrics.observe("leader.phase.aggregation_ms",
                          timings.aggregation_ms);
    obs_->metrics.observe("leader.phase.indexing_ms", timings.indexing_ms);
    obs_->metrics.observe("leader.phase.ld_ms", timings.ld_ms);
    obs_->metrics.observe("leader.phase.lr_ms", timings.lr_ms);
  }
  co_return result;
}

}  // namespace gendpr::core
