#include "gendpr/baselines.hpp"

#include <algorithm>

#include "common/stopwatch.hpp"
#include "gendpr/trusted.hpp"
#include "genome/bitplanes.hpp"
#include "stats/association.hpp"
#include "stats/ld.hpp"
#include "stats/lr_test.hpp"

namespace gendpr::core {

using common::Stopwatch;

namespace {

/// Chi-squared association p-values of case counts against the reference.
std::vector<double> association_p_values(
    const std::vector<std::uint32_t>& case_counts, std::uint64_t n_case,
    const std::vector<std::uint32_t>& ref_counts, std::uint64_t n_ref) {
  std::vector<double> p_values(case_counts.size(), 1.0);
  for (std::size_t l = 0; l < case_counts.size(); ++l) {
    const stats::SinglewiseTable table{case_counts[l], n_case, ref_counts[l],
                                       n_ref};
    p_values[l] = stats::chi2_p_value(table);
  }
  return p_values;
}

std::vector<double> freq_of(const std::vector<std::uint32_t>& counts,
                            const std::vector<std::uint32_t>& snps,
                            std::uint64_t n) {
  std::vector<double> freq(snps.size(), 0.0);
  for (std::size_t i = 0; i < snps.size(); ++i) {
    freq[i] = n == 0 ? 0.0
                     : static_cast<double>(counts[snps[i]]) /
                           static_cast<double>(n);
  }
  return freq;
}

}  // namespace

BaselineResult run_centralized(const genome::Cohort& cohort,
                               const StudyConfig& config) {
  BaselineResult result;
  const Stopwatch total_watch;

  // "Data Aggregation": the centralized enclave ingests every genome and
  // builds the SNP-major planes its statistical kernels run on.
  Stopwatch aggregation_watch;
  const genome::GenotypeMatrix cases = cohort.cases;        // full copy in
  const genome::GenotypeMatrix reference = cohort.controls; // full copy in
  const genome::BitPlanes case_planes(cases);
  const genome::BitPlanes ref_planes(reference);
  result.timings.aggregation_ms = aggregation_watch.elapsed_ms();

  const std::uint64_t n_case = cases.num_individuals();
  const std::uint64_t n_ref = reference.num_individuals();

  // "Indexing/Sorting/AlleleFreq.": counts, MAF filter, association ranking.
  Stopwatch indexing_watch;
  const std::vector<std::uint32_t> case_counts = case_planes.allele_counts();
  const std::vector<std::uint32_t> ref_counts = ref_planes.allele_counts();
  std::vector<double> maf(case_counts.size(), 0.0);
  for (std::size_t l = 0; l < case_counts.size(); ++l) {
    maf[l] = stats::minor_allele_frequency(case_counts[l] + ref_counts[l],
                                           n_case + n_ref);
  }
  result.outcome.l_prime = stats::maf_filter(maf, config.maf_cutoff);
  const std::vector<double> p_values =
      association_p_values(case_counts, n_case, ref_counts, n_ref);
  result.timings.indexing_ms = indexing_watch.elapsed_ms();

  // "LD analysis": greedy pruning with pooled (case + reference) moments.
  Stopwatch ld_watch;
  auto pair_p_value = [&](std::uint32_t a, std::uint32_t b) {
    stats::LdMoments moments = stats::compute_ld_moments(case_planes, a, b);
    moments += stats::compute_ld_moments(ref_planes, a, b);
    return stats::ld_p_value(moments);
  };
  result.outcome.l_double_prime = stats::greedy_ld_prune(
      result.outcome.l_prime, config.ld_cutoff, p_values, pair_p_value);
  result.timings.ld_ms = ld_watch.elapsed_ms();

  // "LR-test analysis".
  Stopwatch lr_watch;
  const std::vector<double> case_freq =
      freq_of(case_counts, result.outcome.l_double_prime, n_case);
  const std::vector<double> ref_freq =
      freq_of(ref_counts, result.outcome.l_double_prime, n_ref);
  const stats::LrWeights weights = stats::lr_weights(case_freq, ref_freq);
  const stats::LrMatrix case_lr = stats::build_lr_matrix(
      case_planes, result.outcome.l_double_prime, weights);
  const stats::LrMatrix ref_lr = stats::build_lr_matrix(
      ref_planes, result.outcome.l_double_prime, weights);
  stats::LrSelectionParams params;
  params.false_positive_rate = config.lr_false_positive_rate;
  params.power_threshold = config.lr_power_threshold;
  const stats::LrSelectionResult selection =
      stats::select_safe_snps(case_lr, ref_lr, params);
  result.outcome.l_safe.reserve(selection.safe_columns.size());
  for (std::uint32_t column : selection.safe_columns) {
    result.outcome.l_safe.push_back(result.outcome.l_double_prime[column]);
  }
  result.outcome.final_power = selection.final_power;
  result.timings.lr_ms = lr_watch.elapsed_ms();

  result.timings.total_ms = total_watch.elapsed_ms();
  return result;
}

BaselineResult run_naive_distributed(const genome::Cohort& cohort,
                                     const StudyConfig& config,
                                     std::uint32_t num_gdos) {
  BaselineResult result;
  const Stopwatch total_watch;

  const genome::GenotypeMatrix& reference = cohort.controls;
  const genome::BitPlanes ref_planes(reference);
  const std::uint64_t n_ref = reference.num_individuals();
  const std::vector<std::uint32_t> ref_counts = ref_planes.allele_counts();

  const auto ranges =
      genome::equal_partition(cohort.cases.num_individuals(), num_gdos);
  std::vector<genome::GenotypeMatrix> locals;
  locals.reserve(num_gdos);
  for (const auto& [begin, end] : ranges) {
    locals.push_back(cohort.cases.slice_rows(begin, end));
  }
  std::vector<genome::BitPlanes> local_planes;
  local_planes.reserve(num_gdos);
  for (const auto& local : locals) local_planes.emplace_back(local);

  // MAF is still computed over aggregated counts - the paper observes the
  // naive scheme "is able to retain the same SNPs during the MAF evaluation".
  Stopwatch indexing_watch;
  const std::vector<std::uint32_t> case_counts = cohort.cases.allele_counts();
  const std::uint64_t n_case = cohort.cases.num_individuals();
  std::vector<double> maf(case_counts.size(), 0.0);
  for (std::size_t l = 0; l < case_counts.size(); ++l) {
    maf[l] = stats::minor_allele_frequency(case_counts[l] + ref_counts[l],
                                           n_case + n_ref);
  }
  result.outcome.l_prime = stats::maf_filter(maf, config.maf_cutoff);
  result.timings.indexing_ms = indexing_watch.elapsed_ms();

  // LD: every GDO prunes with *local* moments and *local* ranking, then the
  // coordinator intersects - the flawed scheme of Table 4's bold rows.
  Stopwatch ld_watch;
  std::vector<std::vector<std::uint32_t>> local_ld_lists;
  local_ld_lists.reserve(num_gdos);
  for (const auto& local : local_planes) {
    const std::vector<double> local_p_values = association_p_values(
        local.allele_counts(), local.num_individuals(), ref_counts, n_ref);
    auto pair_p_value = [&](std::uint32_t a, std::uint32_t b) {
      stats::LdMoments moments = stats::compute_ld_moments(local, a, b);
      moments += stats::compute_ld_moments(ref_planes, a, b);
      return stats::ld_p_value(moments);
    };
    local_ld_lists.push_back(stats::greedy_ld_prune(
        result.outcome.l_prime, config.ld_cutoff, local_p_values,
        pair_p_value));
  }
  result.outcome.l_double_prime = intersect_sorted(local_ld_lists);
  result.timings.ld_ms = ld_watch.elapsed_ms();

  // LR-test: per GDO with local frequencies, then intersect.
  Stopwatch lr_watch;
  const std::vector<double> ref_freq =
      freq_of(ref_counts, result.outcome.l_double_prime, n_ref);
  std::vector<std::vector<std::uint32_t>> local_safe_lists;
  local_safe_lists.reserve(num_gdos);
  double worst_power = 0.0;
  for (const auto& local : local_planes) {
    const std::vector<double> local_freq =
        freq_of(local.allele_counts(), result.outcome.l_double_prime,
                local.num_individuals());
    const stats::LrWeights weights = stats::lr_weights(local_freq, ref_freq);
    const stats::LrMatrix local_lr = stats::build_lr_matrix(
        local, result.outcome.l_double_prime, weights);
    const stats::LrMatrix ref_lr = stats::build_lr_matrix(
        ref_planes, result.outcome.l_double_prime, weights);
    stats::LrSelectionParams params;
    params.false_positive_rate = config.lr_false_positive_rate;
    params.power_threshold = config.lr_power_threshold;
    const stats::LrSelectionResult selection =
        stats::select_safe_snps(local_lr, ref_lr, params);
    std::vector<std::uint32_t> safe;
    safe.reserve(selection.safe_columns.size());
    for (std::uint32_t column : selection.safe_columns) {
      safe.push_back(result.outcome.l_double_prime[column]);
    }
    local_safe_lists.push_back(std::move(safe));
    worst_power = std::max(worst_power, selection.final_power);
  }
  result.outcome.l_safe = intersect_sorted(local_safe_lists);
  result.outcome.final_power = worst_power;
  result.timings.lr_ms = lr_watch.elapsed_ms();

  result.timings.total_ms = total_watch.elapsed_ms();
  return result;
}

}  // namespace gendpr::core
