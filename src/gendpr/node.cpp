#include "gendpr/node.hpp"

#include <functional>
#include <utility>
#include <vector>

namespace gendpr::core {

using common::Errc;
using common::Result;
using common::Status;

namespace {

using Clock = ProtocolSession::Clock;

/// Pumps a session to completion against a blocking transport mailbox: the
/// bridge between the sans-IO engine and the thread-per-node hosts. Losses
/// reported by transport threads are folded in through `drain_losses` at
/// the top of every iteration (paired with the kNoNode wake sentinel the
/// hook pushes to interrupt a blocking receive).
void pump_blocking(ProtocolSession& session, net::Transport& network,
                   net::Mailbox& mailbox, std::uint32_t self_gdo,
                   const std::function<void()>& drain_losses) {
  session.start(Clock::now());
  for (;;) {
    if (drain_losses) drain_losses();
    switch (session.wants()) {
      case SessionWants::done:
      case SessionWants::failed:
      case SessionWants::idle:
        return;
      case SessionWants::send: {
        std::vector<SendFailure> failures;
        for (OutFrame& frame : session.take_output()) {
          // The in-process transport moves owning payload bytes between
          // mailboxes; peel the pooled buffer's header headroom off (one
          // memmove — the price of the unframed legacy path).
          const Status sent =
              network.send(node_id_of(self_gdo), node_id_of(frame.to_gdo),
                           std::move(frame.payload).take_payload());
          if (!sent.ok()) {
            failures.push_back(SendFailure{frame.to_gdo, sent.error()});
          }
        }
        session.on_sends_complete(std::move(failures), Clock::now());
        break;
      }
      case SessionWants::recv: {
        std::chrono::milliseconds wait = kNoDeadline;
        if (const auto deadline = session.next_deadline()) {
          const auto remaining = *deadline - Clock::now();
          if (remaining <= Clock::duration::zero()) {
            session.on_tick(Clock::now());
            break;
          }
          // Ceil so the wait never undershoots the armed deadline (an early
          // tick would be ignored and turn this loop into a busy spin).
          wait = std::chrono::ceil<std::chrono::milliseconds>(remaining);
        }
        auto envelope_msg = mailbox.receive_for(wait);
        if (!envelope_msg.ok()) {
          if (envelope_msg.error().code == Errc::timeout) {
            session.on_tick(Clock::now());
          } else {
            session.on_transport_closed(Clock::now());
          }
          break;
        }
        net::Envelope& env = envelope_msg.value();
        if (env.from == net::kNoNode) break;  // peer-lost wake sentinel
        session.on_frame(env.from - 1, std::move(env.payload), Clock::now());
        break;
      }
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// MemberNode
// ---------------------------------------------------------------------------

MemberNode::MemberNode(net::Transport& network, tee::Platform& platform,
                       std::uint32_t gdo_index, std::uint32_t leader_gdo,
                       genome::GenotypeMatrix cases)
    : network_(&network),
      mailbox_(network.attach(node_id_of(gdo_index))),
      gdo_index_(gdo_index),
      session_(platform, gdo_index, leader_gdo, std::move(cases)) {
  if (!session_.provision_status().ok()) status_ = session_.provision_status();
}

MemberNode::~MemberNode() {
  network_->detach(node_id_of(gdo_index_));
  if (thread_.joinable()) thread_.join();
}

void MemberNode::start() {
  thread_ = std::thread([this] { run(); });
}

void MemberNode::join() {
  if (thread_.joinable()) thread_.join();
}

void MemberNode::run() {
  if (!status_.ok()) return;
  pump_blocking(session_, *network_, *mailbox_, gdo_index_, nullptr);
  status_ = session_.status();
}

// ---------------------------------------------------------------------------
// LeaderNode
// ---------------------------------------------------------------------------

LeaderNode::LeaderNode(net::Transport& network, tee::Platform& platform,
                       std::uint32_t gdo_index, std::uint32_t num_gdos,
                       genome::GenotypeMatrix cases,
                       genome::GenotypeMatrix reference,
                       StudyAnnounce announce)
    : network_(&network),
      mailbox_(network.attach(node_id_of(gdo_index))),
      gdo_index_(gdo_index),
      num_gdos_(num_gdos),
      session_(platform, gdo_index, num_gdos, std::move(cases),
               std::move(reference), std::move(announce)) {
  network_->set_peer_lost_handler(
      [this](net::NodeId node) { note_peer_lost(node); });
}

LeaderNode::~LeaderNode() {
  network_->set_peer_lost_handler(nullptr);
}

void LeaderNode::note_peer_lost(net::NodeId node) {
  if (node == net::kNoNode || node == node_id_of(gdo_index_)) return;
  const std::uint32_t gdo = node - 1;
  if (gdo >= num_gdos_) return;
  {
    std::lock_guard<std::mutex> lock(hook_mutex_);
    hook_dead_.insert(gdo);
  }
  // Wake the protocol thread if it is blocked in a gather: the pump skips
  // envelopes from kNoNode and drains the loss set at the loop top.
  mailbox_->push(net::Envelope{net::kNoNode, node_id_of(gdo_index_), {}});
}

Result<StudyResult> LeaderNode::run_study(common::ThreadPool* pool) {
  session_.set_pool(pool);
  const auto drain = [this] {
    std::set<std::uint32_t> lost;
    {
      std::lock_guard<std::mutex> lock(hook_mutex_);
      lost.swap(hook_dead_);
    }
    for (std::uint32_t gdo : lost) session_.on_peer_lost(gdo, Clock::now());
  };
  pump_blocking(session_, *network_, *mailbox_, gdo_index_, drain);
  if (!session_.status().ok()) return session_.status().error();
  StudyResult result = session_.result();
  // The transport meter is host-side state the sans-IO session cannot see;
  // snapshot it here, at the same protocol point (after the phase-3
  // broadcast) the threaded leader did.
  if (net::TrafficMeter* meter = network_->meter_or_null()) {
    result.network_bytes_total = meter->total_bytes();
    result.leader_bytes_received =
        meter->bytes_received_by(node_id_of(gdo_index_));
    result.network_links = meter->snapshot();
  }
  return result;
}

}  // namespace gendpr::core
