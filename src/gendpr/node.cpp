#include "gendpr/node.hpp"

#include <string>
#include <utility>

#include "common/log.hpp"
#include "common/stopwatch.hpp"
#include "crypto/aead.hpp"
#include "genome/kernels/kernels.hpp"

namespace gendpr::core {

using common::Errc;
using common::make_error;
using common::Result;
using common::Status;
using common::Stopwatch;

namespace {

/// True for failures that mean "this peer is gone", as opposed to protocol
/// or crypto violations that must abort the study.
bool is_peer_loss(const common::Error& error) {
  return error.code == Errc::unknown_peer || error.code == Errc::io_error;
}

}  // namespace

// ---------------------------------------------------------------------------
// MemberNode
// ---------------------------------------------------------------------------

MemberNode::MemberNode(net::Transport& network, tee::Platform& platform,
                       std::uint32_t gdo_index, std::uint32_t leader_gdo,
                       genome::GenotypeMatrix cases)
    : network_(&network),
      mailbox_(network.attach(node_id_of(gdo_index))),
      gdo_index_(gdo_index),
      leader_gdo_(leader_gdo),
      enclave_(platform, gdo_index) {
  const Status provisioned = enclave_.provision_dataset(std::move(cases));
  if (!provisioned.ok()) status_ = provisioned;
}

MemberNode::~MemberNode() {
  network_->detach(node_id_of(gdo_index_));
  if (thread_.joinable()) thread_.join();
}

void MemberNode::start() {
  thread_ = std::thread([this] { run(); });
}

void MemberNode::join() {
  if (thread_.joinable()) thread_.join();
}

void MemberNode::run() {
  if (!status_.ok()) return;

  // Translates a bounded-wait failure into the member's study status:
  // expiry names the leader (the only peer this node waits on).
  const auto wait_error = [this](const common::Error& error,
                                 const char* where) -> common::Error {
    if (error.code == Errc::timeout) {
      return make_error(Errc::timeout,
                        "gdo " + std::to_string(gdo_index_) +
                            ": leader gdo " + std::to_string(leader_gdo_) +
                            " unresponsive (" + where + " deadline expired)");
    }
    return make_error(Errc::state_violation,
                      std::string("mailbox closed ") + where);
  };

  // Attested handshake: member initiates toward the leader's enclave.
  channel_ = enclave_.channel_to(trusted_module_measurement(),
                                 /*initiator=*/true);
  network_->send(node_id_of(gdo_index_), node_id_of(leader_gdo_),
                 channel_->handshake_message());
  auto leader_handshake = mailbox_->receive_for(receive_timeout_);
  if (!leader_handshake.ok()) {
    status_ = wait_error(leader_handshake.error(), "in handshake");
    return;
  }
  if (Status s = channel_->complete(leader_handshake.value().payload);
      !s.ok()) {
    status_ = s;
    return;
  }
  common::log_debug("member", "gdo ", gdo_index_, " channel established");

  // Serve phase requests until the study completes. One scratch buffer is
  // reused across records so the hot loop does not allocate per message.
  common::Bytes plaintext_scratch;
  while (!enclave_.study_complete()) {
    auto envelope_msg = mailbox_->receive_for(receive_timeout_);
    if (!envelope_msg.ok()) {
      status_ = wait_error(envelope_msg.error(), "mid-study");
      return;
    }
    if (Status s =
            channel_->open_to(envelope_msg.value().payload, plaintext_scratch);
        !s.ok()) {
      status_ = s;
      return;
    }
    auto opened = open_envelope(plaintext_scratch);
    if (!opened.ok()) {
      status_ = opened.error();
      return;
    }
    const auto& [type, body] = opened.value();
    obs::add_counter(obs_,
                     "member." + std::to_string(gdo_index_) + ".requests");

    auto reply = [&](MsgType reply_type,
                     common::BytesView reply_body) -> Status {
      auto record = channel_->seal(envelope(reply_type, reply_body));
      if (!record.ok()) return record.error();
      return network_->send(node_id_of(gdo_index_), node_id_of(leader_gdo_),
                            std::move(record).take());
    };

    switch (type) {
      case MsgType::study_announce: {
        auto announce = StudyAnnounce::deserialize(body);
        if (!announce.ok()) {
          status_ = announce.error();
          return;
        }
        if (Status s = enclave_.on_study_announce(announce.value()); !s.ok()) {
          status_ = s;
          return;
        }
        // One summary per tile of the announce-derived plan (a single tile
        // when tiling is off). Each reply goes out as soon as its tile is
        // counted, so the leader assesses tile k while this member is still
        // computing tile k+1.
        const genome::TilePlan plan = genome::TilePlan::over(
            announce.value().num_snps, announce.value().config.snp_tile_width);
        for (std::uint32_t k = 0; k < plan.tile_count(); ++k) {
          const Stopwatch compute_watch;
          const SummaryStats stats =
              enclave_.make_summary_tile(plan.begin(k), plan.end(k), k);
          compute_ms_ += compute_watch.elapsed_ms();
          if (Status s = reply(MsgType::summary_stats, stats.serialize());
              !s.ok()) {
            status_ = s;
            return;
          }
        }
        break;
      }
      case MsgType::phase1_result: {
        auto result = Phase1Result::deserialize(body);
        if (!result.ok()) {
          status_ = result.error();
          return;
        }
        if (Status s = enclave_.on_phase1(result.value()); !s.ok()) {
          status_ = s;
          return;
        }
        break;
      }
      case MsgType::moments_request: {
        auto request = MomentsRequest::deserialize(body);
        if (!request.ok()) {
          status_ = request.error();
          return;
        }
        const Stopwatch compute_watch;
        auto response = enclave_.on_moments_request(request.value());
        compute_ms_ += compute_watch.elapsed_ms();
        if (!response.ok()) {
          status_ = response.error();
          return;
        }
        if (Status s = reply(MsgType::moments_response,
                             response.value().serialize());
            !s.ok()) {
          status_ = s;
          return;
        }
        break;
      }
      case MsgType::phase2_result: {
        auto result = Phase2Result::deserialize(body);
        if (!result.ok()) {
          status_ = result.error();
          return;
        }
        const Stopwatch compute_watch;
        auto matrices = enclave_.on_phase2(result.value(), pool_);
        compute_ms_ += compute_watch.elapsed_ms();
        if (!matrices.ok()) {
          status_ = matrices.error();
          return;
        }
        // One basis build per tile iff this GDO sat in any live combination,
        // plus one basis-times-weights derivation per entry. The per-tile
        // basis bounds this member's transient EPC footprint at O(tile).
        // Under the intersection-aware sweep only the chain head is a full
        // derivation; the rest are in-place delta updates.
        if (!matrices.value().entries.empty()) {
          obs::add_counter(obs_, "lr.basis_builds");
          if (enclave_.prune_enabled()) {
            obs::add_counter(obs_, "lr.combination_matvecs");
            obs::add_counter(obs_, "lr.combination_delta_updates",
                             matrices.value().entries.size() - 1);
          } else {
            obs::add_counter(obs_, "lr.combination_matvecs",
                             matrices.value().entries.size());
          }
        }
        obs::max_gauge(obs_, "epc.member.peak_bytes",
                       static_cast<double>(enclave_.platform().epc().peak()));
        if (Status s = reply(MsgType::lr_matrices,
                             matrices.value().serialize());
            !s.ok()) {
          status_ = s;
          return;
        }
        break;
      }
      case MsgType::phase3_result: {
        auto result = Phase3Result::deserialize(body);
        if (!result.ok()) {
          status_ = result.error();
          return;
        }
        if (Status s = enclave_.on_phase3(result.value()); !s.ok()) {
          status_ = s;
          return;
        }
        break;
      }
      case MsgType::abort_notice: {
        auto notice = AbortNotice::deserialize(body);
        if (!notice.ok()) {
          status_ = notice.error();
          return;
        }
        std::string reason = "study aborted by leader";
        if (notice.value().failed_gdo != AbortNotice::kNoFailedGdo) {
          reason += " (gdo " + std::to_string(notice.value().failed_gdo) +
                    " unresponsive)";
        }
        reason += ": " + notice.value().reason;
        status_ = make_error(Errc::aborted, std::move(reason));
        return;
      }
      default:
        status_ = make_error(Errc::bad_message, "unexpected message type");
        return;
    }
  }
  obs::observe(obs_, "member.compute_ms", compute_ms_);
}

// ---------------------------------------------------------------------------
// LeaderNode
// ---------------------------------------------------------------------------

LeaderNode::LeaderNode(net::Transport& network, tee::Platform& platform,
                       std::uint32_t gdo_index, std::uint32_t num_gdos,
                       genome::GenotypeMatrix cases,
                       genome::GenotypeMatrix reference,
                       StudyAnnounce announce)
    : network_(&network),
      mailbox_(network.attach(node_id_of(gdo_index))),
      gdo_index_(gdo_index),
      num_gdos_(num_gdos),
      enclave_(platform, gdo_index),
      coordinator_(enclave_, std::move(reference), num_gdos,
                   std::move(announce)),
      channels_(num_gdos) {
  // Provisioning failures (EPC limit) surface from run_study, which checks
  // that the dataset is present before announcing.
  provision_status_ = enclave_.provision_dataset(std::move(cases));
  network_->set_peer_lost_handler(
      [this](net::NodeId node) { note_peer_lost(node); });
}

LeaderNode::~LeaderNode() {
  network_->set_peer_lost_handler(nullptr);
}

void LeaderNode::note_peer_lost(net::NodeId node) {
  if (node == net::kNoNode || node == node_id_of(gdo_index_)) return;
  const std::uint32_t gdo = node - 1;
  if (gdo >= num_gdos_) return;
  {
    std::lock_guard<std::mutex> lock(hook_mutex_);
    hook_dead_.insert(gdo);
  }
  // Wake the protocol thread if it is blocked in a gather: receive loops
  // skip envelopes from kNoNode after syncing the dead set.
  mailbox_->push(net::Envelope{net::kNoNode, node_id_of(gdo_index_), {}});
}

void LeaderNode::sync_dead_peers() {
  std::set<std::uint32_t> lost;
  {
    std::lock_guard<std::mutex> lock(hook_mutex_);
    lost.swap(hook_dead_);
  }
  for (std::uint32_t gdo : lost) {
    if (coordinator_.dead_gdos().count(gdo) != 0) continue;
    common::log_warn("leader", "connection to gdo ", gdo,
                     " lost; marking unresponsive");
    (void)coordinator_.mark_gdo_dead(gdo);
  }
}

void LeaderNode::mark_pending_dead(std::set<std::uint32_t>& pending,
                                   const char* phase) {
  for (std::uint32_t gdo : pending) {
    common::log_warn("leader", phase, ": gdo ", gdo,
                     " unresponsive (deadline expired); marking dead");
    (void)coordinator_.mark_gdo_dead(gdo);
  }
  pending.clear();
}

common::Error LeaderNode::dead_peers_error(const char* phase) const {
  std::string message(phase);
  message += " timed out: unresponsive gdo(s):";
  for (std::uint32_t gdo : coordinator_.dead_gdos()) {
    message += ' ';
    message += std::to_string(gdo);
  }
  return make_error(Errc::timeout, std::move(message));
}

std::set<std::uint32_t> LeaderNode::live_members() const {
  std::set<std::uint32_t> members;
  for (std::uint32_t g = 0; g < num_gdos_; ++g) {
    if (g == gdo_index_ || channels_[g] == nullptr) continue;
    if (coordinator_.dead_gdos().count(g) != 0) continue;
    members.insert(g);
  }
  return members;
}

Status LeaderNode::establish_channels() {
  std::set<std::uint32_t> pending;
  for (std::uint32_t g = 0; g < num_gdos_; ++g) {
    if (g != gdo_index_) pending.insert(g);
  }
  for (;;) {
    sync_dead_peers();
    for (std::uint32_t gdo : coordinator_.dead_gdos()) pending.erase(gdo);
    if (pending.empty()) break;
    auto handshake = mailbox_->receive_for(receive_timeout_);
    if (!handshake.ok()) {
      if (handshake.error().code == Errc::timeout) {
        mark_pending_dead(pending, "handshake");
        break;
      }
      return make_error(Errc::state_violation, "mailbox closed in handshake");
    }
    const net::Envelope& env = handshake.value();
    if (env.from == net::kNoNode) continue;  // peer-lost wake sentinel
    const std::uint32_t member = env.from - 1;
    if (member >= num_gdos_ || member == gdo_index_) {
      return make_error(Errc::unknown_peer, "handshake from unknown node");
    }
    if (coordinator_.dead_gdos().count(member) != 0) continue;
    auto channel = enclave_.channel_to(trusted_module_measurement(),
                                       /*initiator=*/false);
    if (Status s = channel->complete(env.payload); !s.ok()) return s;
    if (Status s = network_->send(node_id_of(gdo_index_), env.from,
                                  channel->handshake_message());
        !s.ok()) {
      if (!is_peer_loss(s.error())) return s;
      // The member vanished between handshake halves.
      (void)coordinator_.mark_gdo_dead(member);
      pending.erase(member);
      continue;
    }
    channels_[member] = std::move(channel);
    pending.erase(member);
  }
  // Any established channel is reachable for abort notices from here on,
  // even if the handshake round itself ends in a timeout below.
  channels_established_ = true;
  if (coordinator_.live_combination_count() == 0) {
    return dead_peers_error("handshake");
  }
  return Status::success();
}

Status LeaderNode::send_to(std::uint32_t gdo_index, MsgType type,
                           common::BytesView body) {
  if (channels_[gdo_index] == nullptr) {
    return make_error(Errc::unknown_peer,
                      "no channel to gdo " + std::to_string(gdo_index));
  }
  auto record = channels_[gdo_index]->seal(envelope(type, body));
  if (!record.ok()) return record.error();
  return network_->send(node_id_of(gdo_index_), node_id_of(gdo_index),
                        std::move(record).take());
}

Status LeaderNode::broadcast(MsgType type, common::BytesView body) {
  sync_dead_peers();
  for (std::uint32_t g : live_members()) {
    Status s = send_to(g, type, body);
    if (s.ok()) continue;
    if (!is_peer_loss(s.error())) return s;
    common::log_warn("leader", "send to gdo ", g,
                     " failed: ", s.error().to_string());
    (void)coordinator_.mark_gdo_dead(g);
  }
  if (coordinator_.live_combination_count() == 0) {
    return dead_peers_error("broadcast");
  }
  return Status::success();
}

void LeaderNode::broadcast_abort(const common::Error& error) {
  AbortNotice notice;
  const auto& dead = coordinator_.dead_gdos();
  if (!dead.empty()) notice.failed_gdo = *dead.begin();
  notice.reason = error.to_string();
  const common::Bytes body = notice.serialize();
  for (std::uint32_t g : live_members()) {
    (void)send_to(g, MsgType::abort_notice, body);  // best effort
  }
}

Result<LeaderNode::GatherStep> LeaderNode::next_record(
    const char* phase, std::set<std::uint32_t>& pending) {
  for (;;) {
    sync_dead_peers();
    for (std::uint32_t gdo : coordinator_.dead_gdos()) pending.erase(gdo);
    if (pending.empty()) return GatherStep{};
    auto envelope_msg = mailbox_->receive_for(receive_timeout_);
    if (!envelope_msg.ok()) {
      if (envelope_msg.error().code == Errc::timeout) {
        mark_pending_dead(pending, phase);
        return GatherStep{};
      }
      return make_error(Errc::state_violation, "mailbox closed mid-study");
    }
    const net::Envelope& env = envelope_msg.value();
    if (env.from == net::kNoNode) continue;  // peer-lost wake sentinel
    const std::uint32_t member = env.from - 1;
    if (member >= num_gdos_) {
      return make_error(Errc::unknown_peer, "record from unknown node");
    }
    // A record from a declared-dead member means it was slow, not gone;
    // its combinations are already skipped, so drop the late arrival.
    if (coordinator_.dead_gdos().count(member) != 0) continue;
    if (channels_[member] == nullptr) {
      return make_error(Errc::unknown_peer, "record from unknown node");
    }
    auto plaintext = channels_[member]->open(env.payload);
    if (!plaintext.ok()) return plaintext.error();
    GatherStep step;
    step.got = true;
    step.member = member;
    step.plaintext = std::move(plaintext).take();
    return step;
  }
}

Result<StudyResult> LeaderNode::run_study(common::ThreadPool* pool) {
  auto result = run_study_impl(pool);
  if (!result.ok() && channels_established_) {
    broadcast_abort(result.error());
  }
  return result;
}

Result<StudyResult> LeaderNode::run_study_impl(common::ThreadPool* pool) {
  const Stopwatch total_watch;
  const crypto::AeadCounters aead_before = crypto::aead_counters();
  PhaseTimings timings;

  if (!provision_status_.ok()) return provision_status_.error();
  {
    const obs::ScopedSpan handshake_span(obs::recorder_of(obs_),
                                         "step.handshake", study_span_);
    if (Status s = establish_channels(); !s.ok()) return s.error();
  }

  // --- Announce + Phase 1 input gathering ("Data Aggregation"). ---
  obs::ScopedSpan gather_span(obs::recorder_of(obs_), "step.gather_summaries",
                              study_span_);
  Stopwatch aggregation_watch;
  if (Status s = broadcast(MsgType::study_announce,
                           coordinator_.announce().serialize());
      !s.ok()) {
    return s.error();
  }
  // Each member streams one summary per tile of the phase-1 plan; a member
  // stays pending until its last tile lands. After every arrival the leader
  // assesses whatever tiles are now complete across all live members, so
  // MAF math overlaps the remaining transfers (the pipelined engine's
  // phase-1 half). Inline assessment time is attributed to indexing, not
  // aggregation, to keep the Figure 5/6 categories honest.
  const std::uint32_t maf_tile_count = coordinator_.maf_plan().tile_count();
  std::vector<std::uint32_t> summary_tiles_left(num_gdos_, maf_tile_count);
  double inline_assess_ms = 0;
  std::size_t maf_tiles_inline = 0;
  std::set<std::uint32_t> pending = live_members();
  // An empty phase-1 plan (zero SNPs) streams no summaries at all.
  if (maf_tile_count == 0) pending.clear();
  while (!pending.empty()) {
    auto step = next_record("data aggregation", pending);
    if (!step.ok()) return step.error();
    if (!step.value().got) break;
    auto opened = open_envelope(step.value().plaintext);
    if (!opened.ok()) return opened.error();
    if (opened.value().first != MsgType::summary_stats) {
      return make_error(Errc::state_violation, "expected summary stats");
    }
    auto stats = SummaryStats::deserialize(opened.value().second);
    if (!stats.ok()) return stats.error();
    if (Status s = coordinator_.add_summary(step.value().member,
                                            stats.value());
        !s.ok()) {
      return s.error();
    }
    if (--summary_tiles_left[step.value().member] == 0) {
      pending.erase(step.value().member);
    }
    const Stopwatch assess_watch;
    maf_tiles_inline += coordinator_.assess_ready_maf_tiles();
    inline_assess_ms += assess_watch.elapsed_ms();
    if (pending.empty()) break;
  }
  if (coordinator_.live_combination_count() == 0) {
    return dead_peers_error("data aggregation");
  }
  timings.aggregation_ms += aggregation_watch.elapsed_ms() - inline_assess_ms;
  timings.indexing_ms += inline_assess_ms;
  obs::observe(obs_, "pipeline.leader_assess_ms", inline_assess_ms);
  obs::add_counter(obs_, "pipeline.maf_tiles_assessed_inline",
                   maf_tiles_inline);
  gather_span.end();

  // --- Phase 1: MAF analysis ("Indexing/Sorting/AlleleFreq."). ---
  Stopwatch indexing_watch;
  auto phase1 = coordinator_.run_maf_phase();
  if (!phase1.ok()) return phase1.error();
  timings.indexing_ms += indexing_watch.elapsed_ms();

  aggregation_watch.restart();
  {
    const obs::ScopedSpan broadcast_span(obs::recorder_of(obs_),
                                         "step.broadcast_phase1", study_span_);
    if (Status s = broadcast(MsgType::phase1_result,
                             phase1.value().serialize());
        !s.ok()) {
      return s.error();
    }
  }
  timings.aggregation_ms += aggregation_watch.elapsed_ms();

  // --- Phase 2: LD analysis. ---
  fetch_wait_ms_ = 0;
  Stopwatch ld_watch;
  auto fetch = [this](const MomentsRequest& request,
                      const std::vector<std::uint32_t>& targets)
      -> std::vector<std::optional<stats::LdMoments>> {
    const Stopwatch fetch_watch;
    std::vector<std::optional<stats::LdMoments>> per_gdo(num_gdos_);
    const common::Bytes body = request.serialize();
    sync_dead_peers();
    // The coordinator names the recipients (all live members on a legacy
    // first touch, just the combination at hand under pruning); members that
    // died since the request was composed are dropped here.
    const std::set<std::uint32_t> live = live_members();
    std::set<std::uint32_t> fetch_pending;
    for (std::uint32_t g : targets) {
      if (live.count(g) == 0) continue;
      const Status s = send_to(g, MsgType::moments_request, body);
      if (!s.ok()) {
        if (!is_peer_loss(s.error())) {
          fetch_error_ = s.error();
          break;
        }
        common::log_warn("leader", "moments request to gdo ", g,
                         " failed: ", s.error().to_string());
        (void)coordinator_.mark_gdo_dead(g);
        continue;
      }
      fetch_pending.insert(g);
    }
    while (!fetch_error_.has_value() && !fetch_pending.empty()) {
      auto step = next_record("LD moments fetch", fetch_pending);
      if (!step.ok()) {
        fetch_error_ = step.error();
        break;
      }
      if (!step.value().got) break;
      auto opened = open_envelope(step.value().plaintext);
      if (!opened.ok()) {
        fetch_error_ = opened.error();
        break;
      }
      if (opened.value().first != MsgType::moments_response) {
        fetch_error_ =
            make_error(Errc::state_violation, "expected moments response");
        break;
      }
      auto response = MomentsResponse::deserialize(opened.value().second);
      if (!response.ok()) {
        fetch_error_ = response.error();
        break;
      }
      per_gdo[step.value().member] = response.value().moments;
      fetch_pending.erase(step.value().member);
    }
    fetch_wait_ms_ += fetch_watch.elapsed_ms();
    return per_gdo;
  };
  auto phase2 = coordinator_.run_ld_phase(fetch);
  if (fetch_error_.has_value()) return *fetch_error_;
  if (!phase2.ok()) return phase2.error();
  timings.ld_ms += ld_watch.elapsed_ms() - fetch_wait_ms_;
  timings.aggregation_ms += fetch_wait_ms_;
  obs::observe(obs_, "leader.ld_fetch_wait_ms", fetch_wait_ms_);

  aggregation_watch.restart();
  obs::ScopedSpan lr_gather_span(obs::recorder_of(obs_),
                                 "step.gather_lr_matrices", study_span_);
  // Phase-2 inputs go out as one self-contained message per tile of the
  // phase-3 plan (a single message when tiling is off): each body is
  // O(G·tile) with per-GDO counts. Members start deriving on their own
  // threads as soon as tile 0 lands, so the leader's own per-tile
  // derivations right after the broadcast overlap the members' work.
  std::uint64_t phase2_body_bytes = 0;
  for (const Phase2Result& tile : coordinator_.phase2_tiles()) {
    const common::Bytes body = tile.serialize();
    phase2_body_bytes += body.size();
    obs::add_counter(obs_, "leader.phase2_body_bytes", body.size());
    obs::add_counter(obs_, "leader.phase2_broadcast_bytes",
                     body.size() * live_members().size());
    if (Status s = broadcast(MsgType::phase2_result, body); !s.ok()) {
      return s.error();
    }
  }

  // --- Phase 3: derive leader tiles, gather LR matrices, select. ---
  const Stopwatch lr_derive_watch;
  if (Status s = coordinator_.derive_leader_lr_tiles(); !s.ok()) {
    return s.error();
  }
  const double lr_derive_ms = lr_derive_watch.elapsed_ms();
  obs::observe(obs_, "pipeline.lr_derive_ms", lr_derive_ms);

  // Each member answers every phase-2 tile with one LrMatrices reply.
  const std::uint32_t lr_tile_count = coordinator_.lr_plan().tile_count();
  std::vector<std::uint32_t> lr_tiles_left(num_gdos_, lr_tile_count);
  pending = live_members();
  // An empty phase-3 plan (every SNP filtered before the LR test) was never
  // broadcast, so members have nothing to answer.
  if (lr_tile_count == 0) pending.clear();
  while (!pending.empty()) {
    auto step = next_record("LR gather", pending);
    if (!step.ok()) return step.error();
    if (!step.value().got) break;
    auto opened = open_envelope(step.value().plaintext);
    if (!opened.ok()) return opened.error();
    if (opened.value().first != MsgType::lr_matrices) {
      return make_error(Errc::state_violation, "expected LR matrices");
    }
    auto matrices = LrMatrices::deserialize(opened.value().second);
    if (!matrices.ok()) return matrices.error();
    if (Status s = coordinator_.add_lr_matrices(step.value().member,
                                                matrices.value());
        !s.ok()) {
      return s.error();
    }
    if (--lr_tiles_left[step.value().member] == 0) {
      pending.erase(step.value().member);
    }
    if (pending.empty()) break;
  }
  timings.aggregation_ms += aggregation_watch.elapsed_ms() - lr_derive_ms;
  timings.lr_ms += lr_derive_ms;
  lr_gather_span.end();

  Stopwatch lr_watch;
  auto phase3 = coordinator_.run_lr_phase(pool);
  if (!phase3.ok()) return phase3.error();
  timings.lr_ms += lr_watch.elapsed_ms();

  aggregation_watch.restart();
  {
    const obs::ScopedSpan broadcast_span(obs::recorder_of(obs_),
                                         "step.broadcast_phase3", study_span_);
    if (Status s = broadcast(MsgType::phase3_result,
                             phase3.value().serialize());
        !s.ok()) {
      return s.error();
    }
  }
  timings.aggregation_ms += aggregation_watch.elapsed_ms();
  timings.total_ms = total_watch.elapsed_ms();

  StudyResult result;
  result.outcome = coordinator_.outcome();
  result.timings = timings;
  result.dead_gdos.assign(coordinator_.dead_gdos().begin(),
                          coordinator_.dead_gdos().end());
  result.leader_gdo = gdo_index_;
  result.num_gdos = num_gdos_;
  result.num_combinations = coordinator_.announce().combinations.size();
  result.live_combinations = coordinator_.live_combination_count();
  result.combination_members_total = coordinator_.combination_members_total();
  result.phase2_body_bytes = phase2_body_bytes;
  result.ld_pairs_fetched = coordinator_.ld_pairs_fetched();
  if (net::TrafficMeter* meter = network_->meter_or_null()) {
    result.network_bytes_total = meter->total_bytes();
    result.leader_bytes_received =
        meter->bytes_received_by(node_id_of(gdo_index_));
    result.network_links = meter->snapshot();
  }
  const tee::EpcMeter& epc = enclave_.platform().epc();
  result.epc_peak_per_gdo.assign(num_gdos_, 0);
  result.epc_peak_per_gdo[gdo_index_] = epc.peak();
  result.epc_limit_bytes = epc.limit();
  result.epc_peak_leader = epc.peak();
  // In-process federations overwrite these with a run-wide delta; for a
  // standalone (TCP) leader this process-local delta is the leader's own
  // sealing volume.
  const crypto::AeadCounters aead_after = crypto::aead_counters();
  result.crypto_backend =
      crypto::aead_backend_name(crypto::default_aead_backend());
  result.crypto_records_sealed =
      aead_after.records_sealed - aead_before.records_sealed;
  result.crypto_bytes_sealed =
      aead_after.bytes_sealed - aead_before.bytes_sealed;
  result.kernel_backend = genome::kernels::kernel_backend_name(
      genome::kernels::active_kernel_backend());
  result.snp_tile_width = coordinator_.announce().config.snp_tile_width;
  result.maf_tiles = maf_tile_count;
  result.lr_tiles = lr_tile_count;
  result.maf_tiles_assessed_inline = maf_tiles_inline;
  result.leader_inline_assess_ms = inline_assess_ms;
  result.leader_lr_derive_ms = lr_derive_ms;
  result.pruning = coordinator_.pruning_stats();
  if (obs_ != nullptr) {
    // Counters are exported by the federation runner from a run-wide delta
    // (which also covers provisioning-time sealing); only the label is set
    // here so standalone-leader reports still name their backend.
    obs_->metrics.set_label("crypto.backend", result.crypto_backend);
    obs_->metrics.set_label("kernel.backend", result.kernel_backend);
    obs_->metrics.set_gauge("tiles.width",
                            static_cast<double>(result.snp_tile_width));
    obs_->metrics.set_gauge("tiles.count",
                            static_cast<double>(result.maf_tiles));
    obs_->metrics.set_gauge("tiles.lr_count",
                            static_cast<double>(result.lr_tiles));
    obs_->metrics.observe("leader.phase.aggregation_ms",
                          timings.aggregation_ms);
    obs_->metrics.observe("leader.phase.indexing_ms", timings.indexing_ms);
    obs_->metrics.observe("leader.phase.ld_ms", timings.ld_ms);
    obs_->metrics.observe("leader.phase.lr_ms", timings.lr_ms);
  }
  return result;
}

}  // namespace gendpr::core
