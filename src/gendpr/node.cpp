#include "gendpr/node.hpp"

#include "common/log.hpp"
#include "common/stopwatch.hpp"

namespace gendpr::core {

using common::Errc;
using common::make_error;
using common::Result;
using common::Status;
using common::Stopwatch;

// ---------------------------------------------------------------------------
// MemberNode
// ---------------------------------------------------------------------------

MemberNode::MemberNode(net::Transport& network, tee::Platform& platform,
                       std::uint32_t gdo_index, std::uint32_t leader_gdo,
                       genome::GenotypeMatrix cases)
    : network_(&network),
      mailbox_(network.attach(node_id_of(gdo_index))),
      gdo_index_(gdo_index),
      leader_gdo_(leader_gdo),
      enclave_(platform, gdo_index) {
  const Status provisioned = enclave_.provision_dataset(std::move(cases));
  if (!provisioned.ok()) status_ = provisioned;
}

MemberNode::~MemberNode() {
  network_->detach(node_id_of(gdo_index_));
  if (thread_.joinable()) thread_.join();
}

void MemberNode::start() {
  thread_ = std::thread([this] { run(); });
}

void MemberNode::join() {
  if (thread_.joinable()) thread_.join();
}

void MemberNode::run() {
  if (!status_.ok()) return;

  // Attested handshake: member initiates toward the leader's enclave.
  channel_ = enclave_.channel_to(trusted_module_measurement(),
                                 /*initiator=*/true);
  network_->send(node_id_of(gdo_index_), node_id_of(leader_gdo_),
                 channel_->handshake_message());
  const auto leader_handshake = mailbox_->receive();
  if (!leader_handshake.has_value()) {
    status_ = make_error(Errc::state_violation, "mailbox closed in handshake");
    return;
  }
  if (Status s = channel_->complete(leader_handshake->payload); !s.ok()) {
    status_ = s;
    return;
  }
  common::log_debug("member", "gdo ", gdo_index_, " channel established");

  // Serve phase requests until the study completes.
  while (!enclave_.study_complete()) {
    const auto envelope_msg = mailbox_->receive();
    if (!envelope_msg.has_value()) {
      status_ = make_error(Errc::state_violation, "mailbox closed mid-study");
      return;
    }
    auto plaintext = channel_->open(envelope_msg->payload);
    if (!plaintext.ok()) {
      status_ = plaintext.error();
      return;
    }
    auto opened = open_envelope(plaintext.value());
    if (!opened.ok()) {
      status_ = opened.error();
      return;
    }
    const auto& [type, body] = opened.value();

    auto reply = [&](MsgType reply_type,
                     common::BytesView reply_body) -> Status {
      auto record = channel_->seal(envelope(reply_type, reply_body));
      if (!record.ok()) return record.error();
      return network_->send(node_id_of(gdo_index_), node_id_of(leader_gdo_),
                            std::move(record).take());
    };

    switch (type) {
      case MsgType::study_announce: {
        auto announce = StudyAnnounce::deserialize(body);
        if (!announce.ok()) {
          status_ = announce.error();
          return;
        }
        if (Status s = enclave_.on_study_announce(announce.value()); !s.ok()) {
          status_ = s;
          return;
        }
        const Stopwatch compute_watch;
        const SummaryStats stats = enclave_.make_summary_stats();
        compute_ms_ += compute_watch.elapsed_ms();
        if (Status s = reply(MsgType::summary_stats, stats.serialize());
            !s.ok()) {
          status_ = s;
          return;
        }
        break;
      }
      case MsgType::phase1_result: {
        auto result = Phase1Result::deserialize(body);
        if (!result.ok()) {
          status_ = result.error();
          return;
        }
        if (Status s = enclave_.on_phase1(result.value()); !s.ok()) {
          status_ = s;
          return;
        }
        break;
      }
      case MsgType::moments_request: {
        auto request = MomentsRequest::deserialize(body);
        if (!request.ok()) {
          status_ = request.error();
          return;
        }
        const Stopwatch compute_watch;
        auto response = enclave_.on_moments_request(request.value());
        compute_ms_ += compute_watch.elapsed_ms();
        if (!response.ok()) {
          status_ = response.error();
          return;
        }
        if (Status s = reply(MsgType::moments_response,
                             response.value().serialize());
            !s.ok()) {
          status_ = s;
          return;
        }
        break;
      }
      case MsgType::phase2_result: {
        auto result = Phase2Result::deserialize(body);
        if (!result.ok()) {
          status_ = result.error();
          return;
        }
        const Stopwatch compute_watch;
        auto matrices = enclave_.on_phase2(result.value());
        compute_ms_ += compute_watch.elapsed_ms();
        if (!matrices.ok()) {
          status_ = matrices.error();
          return;
        }
        if (Status s = reply(MsgType::lr_matrices,
                             matrices.value().serialize());
            !s.ok()) {
          status_ = s;
          return;
        }
        break;
      }
      case MsgType::phase3_result: {
        auto result = Phase3Result::deserialize(body);
        if (!result.ok()) {
          status_ = result.error();
          return;
        }
        if (Status s = enclave_.on_phase3(result.value()); !s.ok()) {
          status_ = s;
          return;
        }
        break;
      }
      default:
        status_ = make_error(Errc::bad_message, "unexpected message type");
        return;
    }
  }
}

// ---------------------------------------------------------------------------
// LeaderNode
// ---------------------------------------------------------------------------

LeaderNode::LeaderNode(net::Transport& network, tee::Platform& platform,
                       std::uint32_t gdo_index, std::uint32_t num_gdos,
                       genome::GenotypeMatrix cases,
                       genome::GenotypeMatrix reference,
                       StudyAnnounce announce)
    : network_(&network),
      mailbox_(network.attach(node_id_of(gdo_index))),
      gdo_index_(gdo_index),
      num_gdos_(num_gdos),
      enclave_(platform, gdo_index),
      coordinator_(enclave_, std::move(reference), num_gdos,
                   std::move(announce)),
      channels_(num_gdos) {
  // Provisioning failures (EPC limit) surface from run_study, which checks
  // that the dataset is present before announcing.
  provision_status_ = enclave_.provision_dataset(std::move(cases));
}

Status LeaderNode::establish_channels() {
  std::size_t pending = num_gdos_ - 1;
  while (pending > 0) {
    const auto handshake = mailbox_->receive();
    if (!handshake.has_value()) {
      return make_error(Errc::state_violation, "mailbox closed in handshake");
    }
    const std::uint32_t member = handshake->from - 1;
    if (member >= num_gdos_ || member == gdo_index_) {
      return make_error(Errc::unknown_peer, "handshake from unknown node");
    }
    auto channel = enclave_.channel_to(trusted_module_measurement(),
                                       /*initiator=*/false);
    if (Status s = channel->complete(handshake->payload); !s.ok()) return s;
    if (Status s = network_->send(node_id_of(gdo_index_), handshake->from,
                                  channel->handshake_message());
        !s.ok()) {
      return s;
    }
    channels_[member] = std::move(channel);
    --pending;
  }
  return Status::success();
}

Status LeaderNode::send_to(std::uint32_t gdo_index, MsgType type,
                           common::BytesView body) {
  auto record = channels_[gdo_index]->seal(envelope(type, body));
  if (!record.ok()) return record.error();
  return network_->send(node_id_of(gdo_index_), node_id_of(gdo_index),
                        std::move(record).take());
}

Status LeaderNode::broadcast(MsgType type, common::BytesView body) {
  for (std::uint32_t g = 0; g < num_gdos_; ++g) {
    if (g == gdo_index_) continue;
    if (Status s = send_to(g, type, body); !s.ok()) return s;
  }
  return Status::success();
}

Result<std::pair<std::uint32_t, common::Bytes>> LeaderNode::receive_record() {
  const auto envelope_msg = mailbox_->receive();
  if (!envelope_msg.has_value()) {
    return make_error(Errc::state_violation, "mailbox closed mid-study");
  }
  const std::uint32_t member = envelope_msg->from - 1;
  if (member >= num_gdos_ || channels_[member] == nullptr) {
    return make_error(Errc::unknown_peer, "record from unknown node");
  }
  auto plaintext = channels_[member]->open(envelope_msg->payload);
  if (!plaintext.ok()) return plaintext.error();
  return std::make_pair(member, std::move(plaintext).take());
}

Result<StudyResult> LeaderNode::run_study(common::ThreadPool* pool) {
  const Stopwatch total_watch;
  PhaseTimings timings;

  if (!provision_status_.ok()) return provision_status_.error();
  if (Status s = establish_channels(); !s.ok()) return s.error();

  // --- Announce + Phase 1 input gathering ("Data Aggregation"). ---
  Stopwatch aggregation_watch;
  if (Status s = broadcast(MsgType::study_announce,
                           coordinator_.announce().serialize());
      !s.ok()) {
    return s.error();
  }
  std::size_t summaries_pending = num_gdos_ - 1;
  while (summaries_pending > 0) {
    auto record = receive_record();
    if (!record.ok()) return record.error();
    auto opened = open_envelope(record.value().second);
    if (!opened.ok()) return opened.error();
    if (opened.value().first != MsgType::summary_stats) {
      return make_error(Errc::state_violation, "expected summary stats");
    }
    auto stats = SummaryStats::deserialize(opened.value().second);
    if (!stats.ok()) return stats.error();
    if (Status s = coordinator_.add_summary(record.value().first,
                                            stats.value());
        !s.ok()) {
      return s.error();
    }
    --summaries_pending;
  }
  timings.aggregation_ms += aggregation_watch.elapsed_ms();

  // --- Phase 1: MAF analysis ("Indexing/Sorting/AlleleFreq."). ---
  Stopwatch indexing_watch;
  auto phase1 = coordinator_.run_maf_phase();
  if (!phase1.ok()) return phase1.error();
  timings.indexing_ms += indexing_watch.elapsed_ms();

  aggregation_watch.restart();
  if (Status s = broadcast(MsgType::phase1_result,
                           phase1.value().serialize());
      !s.ok()) {
    return s.error();
  }
  timings.aggregation_ms += aggregation_watch.elapsed_ms();

  // --- Phase 2: LD analysis. ---
  fetch_wait_ms_ = 0;
  Stopwatch ld_watch;
  auto fetch = [this](const MomentsRequest& request)
      -> std::vector<std::optional<stats::LdMoments>> {
    const Stopwatch fetch_watch;
    std::vector<std::optional<stats::LdMoments>> per_gdo(num_gdos_);
    const common::Bytes body = request.serialize();
    for (std::uint32_t g = 0; g < num_gdos_; ++g) {
      if (g == gdo_index_) continue;
      const Status s = send_to(g, MsgType::moments_request, body);
      if (!s.ok()) {
        common::log_error("leader", "moments request failed: ",
                          s.error().to_string());
        return per_gdo;
      }
    }
    std::size_t pending = num_gdos_ - 1;
    while (pending > 0) {
      auto record = receive_record();
      if (!record.ok()) return per_gdo;
      auto opened = open_envelope(record.value().second);
      if (!opened.ok() || opened.value().first != MsgType::moments_response) {
        return per_gdo;
      }
      auto response = MomentsResponse::deserialize(opened.value().second);
      if (!response.ok()) return per_gdo;
      per_gdo[record.value().first] = response.value().moments;
      --pending;
    }
    fetch_wait_ms_ += fetch_watch.elapsed_ms();
    return per_gdo;
  };
  auto phase2 = coordinator_.run_ld_phase(fetch);
  if (!phase2.ok()) return phase2.error();
  timings.ld_ms += ld_watch.elapsed_ms() - fetch_wait_ms_;
  timings.aggregation_ms += fetch_wait_ms_;

  aggregation_watch.restart();
  if (Status s = broadcast(MsgType::phase2_result,
                           phase2.value().serialize());
      !s.ok()) {
    return s.error();
  }

  // --- Phase 3: gather LR matrices, select, broadcast. ---
  std::size_t matrices_pending = num_gdos_ - 1;
  while (matrices_pending > 0) {
    auto record = receive_record();
    if (!record.ok()) return record.error();
    auto opened = open_envelope(record.value().second);
    if (!opened.ok()) return opened.error();
    if (opened.value().first != MsgType::lr_matrices) {
      return make_error(Errc::state_violation, "expected LR matrices");
    }
    auto matrices = LrMatrices::deserialize(opened.value().second);
    if (!matrices.ok()) return matrices.error();
    if (Status s = coordinator_.add_lr_matrices(record.value().first,
                                                matrices.value());
        !s.ok()) {
      return s.error();
    }
    --matrices_pending;
  }
  timings.aggregation_ms += aggregation_watch.elapsed_ms();

  Stopwatch lr_watch;
  auto phase3 = coordinator_.run_lr_phase(pool);
  if (!phase3.ok()) return phase3.error();
  timings.lr_ms += lr_watch.elapsed_ms();

  aggregation_watch.restart();
  if (Status s = broadcast(MsgType::phase3_result,
                           phase3.value().serialize());
      !s.ok()) {
    return s.error();
  }
  timings.aggregation_ms += aggregation_watch.elapsed_ms();
  timings.total_ms = total_watch.elapsed_ms();

  StudyResult result;
  result.outcome = coordinator_.outcome();
  result.timings = timings;
  result.leader_gdo = gdo_index_;
  result.num_combinations = coordinator_.announce().combinations.size();
  result.ld_pairs_fetched = coordinator_.ld_pairs_fetched();
  if (net::TrafficMeter* meter = network_->meter_or_null()) {
    result.network_bytes_total = meter->total_bytes();
    result.leader_bytes_received =
        meter->bytes_received_by(node_id_of(gdo_index_));
  }
  return result;
}

}  // namespace gendpr::core
