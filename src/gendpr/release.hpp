// Release construction: the "open-access GWAS statistics release" of the
// paper's Figure 1, built after GenDPR has assessed which SNPs are safe.
//
// Given aggregate allele counts and the safe SNP set, produces the published
// rows (allele counts, MAF, chi-squared, p-value) for L_safe, and -
// implementing the §5.5 hybrid extension - optionally adds DP-perturbed rows
// for the withheld complement L_des \ L_safe so every desired SNP receives a
// statistic.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "genome/genotype.hpp"

namespace gendpr::core {

struct ReleaseRow {
  std::uint32_t snp = 0;
  bool noise_free = true;       // false: DP-perturbed (hybrid release)
  double case_count = 0;        // exact integer when noise_free
  double control_count = 0;
  double maf = 0;               // pooled minor-allele frequency
  double chi2 = 0;              // association statistic vs control
  double p_value = 1.0;
};

struct ReleaseOptions {
  /// When set, SNPs outside the safe set are published with Laplace noise of
  /// this epsilon (sensitivity 1 per count); when unset they are withheld.
  std::optional<double> dp_epsilon;
  std::uint64_t dp_seed = 1;
};

struct Release {
  std::vector<ReleaseRow> rows;     // sorted by SNP index
  std::size_t noise_free_count = 0;
  std::size_t dp_count = 0;
};

/// Builds the release from the case/control populations and the safe set.
/// `safe` must be sorted (as produced by the protocol).
Release build_release(const genome::GenotypeMatrix& cases,
                      const genome::GenotypeMatrix& controls,
                      const std::vector<std::uint32_t>& safe,
                      const ReleaseOptions& options = {});

/// Renders the release as a TSV table (header + one row per SNP).
std::string release_to_tsv(const Release& release);

}  // namespace gendpr::core
