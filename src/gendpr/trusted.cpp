#include "gendpr/trusted.hpp"

#include <algorithm>
#include <mutex>

#include "common/combinatorics.hpp"
#include "wire/serialize.hpp"
#include "stats/association.hpp"

namespace gendpr::core {

using common::Errc;
using common::make_error;
using common::Result;
using common::Status;

tee::Measurement trusted_module_measurement() {
  return tee::measure(kTrustedModuleName, kTrustedModuleVersion);
}

// ---------------------------------------------------------------------------
// GdoEnclave
// ---------------------------------------------------------------------------

GdoEnclave::GdoEnclave(tee::Platform& platform, std::uint32_t gdo_index)
    : tee::Enclave(platform, kTrustedModuleName, kTrustedModuleVersion),
      gdo_index_(gdo_index) {}

Status GdoEnclave::provision_dataset(genome::GenotypeMatrix cases) {
  auto allocation = reserve_epc(cases.storage_bytes());
  if (!allocation.ok()) return allocation.error();
  genome::BitPlanes planes(cases);
  auto plane_allocation = reserve_epc(planes.storage_bytes());
  if (!plane_allocation.ok()) return plane_allocation.error();
  dataset_epc_ = std::move(allocation).take();
  planes_epc_ = std::move(plane_allocation).take();
  cases_ = std::move(cases);
  planes_ = std::move(planes);
  return Status::success();
}

Status GdoEnclave::on_study_announce(const StudyAnnounce& announce) {
  if (announce.num_snps != cases_.num_snps()) {
    return make_error(Errc::invalid_argument,
                      "announced SNP count does not match local dataset");
  }
  for (const auto& combination : announce.combinations) {
    if (combination.empty()) {
      return make_error(Errc::bad_message, "empty combination in announce");
    }
  }
  announce_ = announce;
  l_prime_.clear();
  l_double_prime_.clear();
  l_safe_.clear();
  phase2_next_tile_ = 0;
  study_complete_ = false;
  return Status::success();
}

SummaryStats GdoEnclave::make_summary_stats() const {
  SummaryStats stats;
  stats.case_counts = planes_.allele_counts();
  stats.n_case = static_cast<std::uint32_t>(cases_.num_individuals());
  return stats;
}

SummaryStats GdoEnclave::make_summary_tile(std::uint32_t snp_begin,
                                           std::uint32_t snp_end,
                                           std::uint32_t tile_index) const {
  const genome::BitPlanes::TileView view = planes_.tile(snp_begin, snp_end);
  SummaryStats stats;
  stats.case_counts.assign(view.allele_counts(),
                           view.allele_counts() + view.num_snps());
  stats.n_case = static_cast<std::uint32_t>(cases_.num_individuals());
  stats.tile_index = tile_index;
  return stats;
}

Status GdoEnclave::on_phase1(const Phase1Result& result) {
  if (!announce_.has_value()) {
    return make_error(Errc::state_violation, "phase1 before study announce");
  }
  for (std::uint32_t snp : result.retained) {
    if (snp >= announce_->num_snps) {
      return make_error(Errc::bad_message, "retained SNP out of range");
    }
  }
  l_prime_ = result.retained;
  return Status::success();
}

Result<MomentsResponse> GdoEnclave::on_moments_request(
    const MomentsRequest& request) const {
  if (!announce_.has_value()) {
    return make_error(Errc::state_violation,
                      "moments request before study announce");
  }
  if (request.snp_a >= cases_.num_snps() ||
      request.snp_b >= cases_.num_snps()) {
    return make_error(Errc::bad_message, "moments request SNP out of range");
  }
  MomentsResponse response;
  response.request_id = request.request_id;
  response.moments =
      stats::compute_ld_moments(planes_, request.snp_a, request.snp_b);
  return response;
}

Result<LrMatrices> GdoEnclave::on_phase2(const Phase2Result& result,
                                         common::ThreadPool* pool) {
  if (!announce_.has_value()) {
    return make_error(Errc::state_violation, "phase2 before study announce");
  }
  if (result.num_tiles == 0 || result.tile_index >= result.num_tiles) {
    return make_error(Errc::bad_message, "phase2 tile index out of range");
  }
  // Tile 0 starts (or restarts) the phase-2 stream; later tiles must arrive
  // in order so L'' assembles exactly as the leader sliced it.
  if (result.tile_index == 0) {
    l_double_prime_.clear();
    phase2_next_tile_ = 0;
  }
  if (result.tile_index != phase2_next_tile_) {
    return make_error(Errc::state_violation, "phase2 tile out of order");
  }
  const std::size_t num_gdos = result.case_counts_per_gdo.size();
  if (result.n_case_per_gdo.size() != num_gdos) {
    return make_error(Errc::bad_message,
                      "per-GDO population vector size mismatch");
  }
  if (gdo_index_ >= num_gdos) {
    return make_error(Errc::bad_message,
                      "per-GDO counts do not cover this GDO");
  }
  for (std::uint32_t snp : result.retained) {
    if (snp >= cases_.num_snps()) {
      return make_error(Errc::bad_message, "phase2 SNP out of range");
    }
  }
  if (result.reference_freq.size() != result.retained.size()) {
    return make_error(Errc::bad_message, "reference frequency size mismatch");
  }
  for (std::uint32_t dead : result.dead_gdos) {
    if (dead == gdo_index_) {
      return make_error(Errc::state_violation,
                        "leader declared this GDO dead yet keeps talking");
    }
  }
  // The leader cannot misattribute this GDO's contribution: its slot must
  // match the local dataset exactly (the counts it reported in phase 1,
  // restricted to L'').
  if (result.n_case_per_gdo[gdo_index_] != cases_.num_individuals() ||
      result.case_counts_per_gdo[gdo_index_] !=
          planes_.allele_counts(result.retained)) {
    return make_error(Errc::bad_message,
                      "per-GDO counts disagree with the local dataset");
  }
  l_double_prime_.insert(l_double_prime_.end(), result.retained.begin(),
                         result.retained.end());
  phase2_next_tile_ = result.tile_index + 1;

  // Pass 1: validate every co-member's count slot and collect the live
  // combinations containing this GDO (the only ones this GDO computes for).
  std::vector<bool> slot_checked(num_gdos, false);
  std::vector<std::size_t> own;
  for (std::size_t c = 0; c < announce_->combinations.size(); ++c) {
    const auto& members = announce_->combinations[c];
    if (std::find(members.begin(), members.end(), gdo_index_) ==
        members.end()) {
      continue;  // this GDO's data is not part of combination c
    }
    const bool combination_dead = std::any_of(
        result.dead_gdos.begin(), result.dead_gdos.end(),
        [&members](std::uint32_t dead) {
          return std::find(members.begin(), members.end(), dead) !=
                 members.end();
        });
    if (combination_dead) {
      continue;  // unresponsive member: the leader dropped this combination
    }
    for (std::uint32_t g : members) {
      if (g >= num_gdos) {
        return make_error(Errc::bad_message,
                          "combination member outside the per-GDO counts");
      }
      if (slot_checked[g]) continue;
      slot_checked[g] = true;
      if (result.case_counts_per_gdo[g].size() != result.retained.size()) {
        return make_error(Errc::bad_message,
                          "per-GDO count vector size mismatch");
      }
      for (std::uint32_t count : result.case_counts_per_gdo[g]) {
        if (count > result.n_case_per_gdo[g]) {
          return make_error(Errc::bad_message,
                            "allele count exceeds population size");
        }
      }
    }
    own.push_back(c);
  }

  LrMatrices response;
  response.tile_index = result.tile_index;
  if (own.empty()) return response;

  // Pass 2: one genotype-fixed basis build, then one cheap derivation per
  // combination. The basis is charged against the EPC meter while held.
  const stats::LrBasis basis(planes_, result.retained);
  auto basis_epc = reserve_epc(basis.storage_bytes());
  if (!basis_epc.ok()) return basis_epc.error();
  response.entries.resize(own.size());
  auto derive_one = [&](std::size_t i) {
    const std::size_t c = own[i];
    const stats::LrWeights weights = stats::lr_weights(
        result.combination_case_freq(announce_->combinations[c]),
        result.reference_freq);
    response.entries[i].combination_id = static_cast<std::uint32_t>(c);
    response.entries[i].matrix = basis.derive(weights);
  };
  if (announce_->config.prune && own.size() > 1) {
    // Intersection-aware sweep: chain the combinations instead of deriving
    // each from scratch — adjacent combinations share all but f members, so
    // most weight columns repeat and derive_update rewrites only the changed
    // ones (byte-identical to a full derivation). The chain is inherently
    // serial; entry order and values match the parallel path exactly.
    stats::LrWeights prev_weights;
    for (std::size_t i = 0; i < own.size(); ++i) {
      const std::size_t c = own[i];
      stats::LrWeights weights = stats::lr_weights(
          result.combination_case_freq(announce_->combinations[c]),
          result.reference_freq);
      response.entries[i].combination_id = static_cast<std::uint32_t>(c);
      if (i == 0) {
        response.entries[i].matrix = basis.derive(weights);
      } else {
        response.entries[i].matrix = response.entries[i - 1].matrix;
        basis.derive_update(prev_weights, weights,
                            response.entries[i].matrix);
      }
      prev_weights = std::move(weights);
    }
  } else if (pool != nullptr && own.size() > 1) {
    pool->parallel_for(own.size(), derive_one);
  } else {
    for (std::size_t i = 0; i < own.size(); ++i) derive_one(i);
  }
  return response;
}

common::Bytes GdoEnclave::seal_study_checkpoint() {
  wire::Writer w;
  w.u8(study_complete_ ? 1 : 0);
  w.vector_u32(l_prime_);
  w.vector_u32(l_double_prime_);
  w.vector_u32(l_safe_);
  return seal(w.buffer());
}

Status GdoEnclave::restore_study_checkpoint(common::BytesView sealed) {
  auto plaintext = unseal(sealed);
  if (!plaintext.ok()) return plaintext.error();
  wire::Reader r(plaintext.value());
  auto complete = r.u8();
  if (!complete.ok()) return complete.error();
  auto l_prime = r.vector_u32();
  if (!l_prime.ok()) return l_prime.error();
  auto l_double_prime = r.vector_u32();
  if (!l_double_prime.ok()) return l_double_prime.error();
  auto l_safe = r.vector_u32();
  if (!l_safe.ok()) return l_safe.error();
  if (!r.exhausted()) {
    return make_error(Errc::bad_message, "trailing bytes in checkpoint");
  }
  study_complete_ = complete.value() != 0;
  l_prime_ = std::move(l_prime).take();
  l_double_prime_ = std::move(l_double_prime).take();
  l_safe_ = std::move(l_safe).take();
  return Status::success();
}

Status GdoEnclave::on_phase3(const Phase3Result& result) {
  if (!announce_.has_value()) {
    return make_error(Errc::state_violation, "phase3 before study announce");
  }
  l_safe_ = result.safe;
  study_complete_ = true;
  return Status::success();
}

// ---------------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------------

std::vector<std::uint32_t> intersect_sorted(
    const std::vector<std::vector<std::uint32_t>>& lists) {
  if (lists.empty()) return {};
  std::vector<std::uint32_t> result = lists[0];
  for (std::size_t i = 1; i < lists.size(); ++i) {
    std::vector<std::uint32_t> next;
    std::set_intersection(result.begin(), result.end(), lists[i].begin(),
                          lists[i].end(), std::back_inserter(next));
    result = std::move(next);
  }
  return result;
}

std::vector<std::vector<std::uint32_t>> Coordinator::build_combinations(
    std::uint32_t num_gdos, const CollusionPolicy& policy) {
  std::vector<std::vector<std::uint32_t>> combinations;
  auto add_for_f = [&](unsigned f) {
    const auto subsets = common::combinations(num_gdos, num_gdos - f);
    for (const auto& subset : subsets) {
      std::vector<std::uint32_t> members(subset.begin(), subset.end());
      combinations.push_back(std::move(members));
    }
  };
  switch (policy.mode) {
    case CollusionPolicy::Mode::none:
      add_for_f(0);
      break;
    case CollusionPolicy::Mode::fixed_f:
      add_for_f(std::min<unsigned>(policy.f, num_gdos - 1));
      break;
    case CollusionPolicy::Mode::all_f:
      for (unsigned f = 1; f < num_gdos; ++f) add_for_f(f);
      break;
  }
  return combinations;
}

struct Coordinator::CombinationInputs {};

namespace {
/// Thrown by aggregate_pair when a member response is absent; converted to a
/// protocol error at the run_ld_phase boundary.
struct MissingMomentsError {
  std::uint32_t gdo_index;
};
}  // namespace

Coordinator::Coordinator(GdoEnclave& leader_enclave,
                         genome::GenotypeMatrix reference,
                         std::uint32_t num_gdos, StudyAnnounce announce)
    : leader_(&leader_enclave),
      reference_(std::move(reference)),
      reference_planes_(reference_),
      num_gdos_(num_gdos),
      announce_(std::move(announce)),
      summaries_(num_gdos) {
  reference_counts_ = reference_planes_.allele_counts();
  maf_plan_ = genome::TilePlan::over(announce_.num_snps,
                                     announce_.config.snp_tile_width);
  summary_tiles_.assign(
      num_gdos_, std::vector<bool>(maf_plan_.tile_count(), false));
  maf_survivors_.assign(announce_.combinations.size(), {});
  maf_mask_contributors_.assign(announce_.combinations.size(), false);
  pruning_.enabled = announce_.config.prune;
}

std::uint64_t Coordinator::combination_case_population(std::size_t c) const {
  std::uint64_t population = 0;
  for (std::uint32_t g : announce_.combinations[c]) {
    if (summaries_[g].has_value()) population += summaries_[g]->n_case;
  }
  return population;
}

std::vector<std::size_t> Coordinator::pruning_order() const {
  std::vector<std::size_t> order;
  for (std::size_t c = 0; c < announce_.combinations.size(); ++c) {
    if (combination_live(c)) order.push_back(c);
  }
  // Smallest pooled case population first: those cohorts see the lowest
  // counts, so their MAF filter and LD walk kill the most SNPs and the
  // running intersection collapses early. Ties (equal partitions are the
  // common case) fall back to combination id, keeping the order stable.
  std::stable_sort(order.begin(), order.end(),
                   [this](std::size_t a, std::size_t b) {
                     return combination_case_population(a) <
                            combination_case_population(b);
                   });
  return order;
}

Status Coordinator::mark_gdo_dead(std::uint32_t gdo_index) {
  if (gdo_index >= num_gdos_) {
    return make_error(Errc::unknown_peer, "cannot mark unknown GDO dead");
  }
  if (gdo_index == leader_->gdo_index()) {
    return make_error(Errc::invalid_argument,
                      "the coordinating leader cannot be marked dead");
  }
  dead_gdos_.insert(gdo_index);
  return Status::success();
}

bool Coordinator::combination_live(std::size_t combination_id) const {
  for (std::uint32_t g : announce_.combinations[combination_id]) {
    if (dead_gdos_.count(g) > 0) return false;
  }
  return true;
}

std::size_t Coordinator::live_combination_count() const {
  std::size_t live = 0;
  for (std::size_t c = 0; c < announce_.combinations.size(); ++c) {
    if (combination_live(c)) ++live;
  }
  return live;
}

std::size_t Coordinator::combination_members_total() const {
  std::size_t total = 0;
  for (std::size_t c = 0; c < announce_.combinations.size(); ++c) {
    if (combination_live(c)) total += announce_.combinations[c].size();
  }
  return total;
}

common::Error Coordinator::no_live_combination_error(
    const std::string& phase) const {
  std::string message =
      phase + " aborted: every combination contains an unresponsive GDO;"
              " dead gdo(s):";
  for (std::uint32_t g : dead_gdos_) message += " " + std::to_string(g);
  return make_error(Errc::timeout, message);
}

Status Coordinator::add_summary(std::uint32_t gdo_index,
                                const SummaryStats& stats) {
  if (gdo_index >= num_gdos_) {
    return make_error(Errc::unknown_peer, "summary from unknown GDO");
  }
  if (stats.tile_index >= maf_plan_.tile_count()) {
    return make_error(Errc::bad_message, "summary tile index out of range");
  }
  if (stats.case_counts.size() != maf_plan_.width_of(stats.tile_index)) {
    return make_error(Errc::bad_message, "summary count vector wrong size");
  }
  for (std::uint32_t count : stats.case_counts) {
    if (count > stats.n_case) {
      return make_error(Errc::bad_message,
                        "allele count exceeds population size");
    }
  }
  if (summary_tiles_[gdo_index][stats.tile_index]) {
    return make_error(Errc::bad_message, "duplicate summary tile");
  }
  // Tiles assemble into one full-width summary; n_case rides along on every
  // tile and must never change mid-stream.
  auto& slot = summaries_[gdo_index];
  if (!slot.has_value()) {
    SummaryStats full;
    full.case_counts.assign(announce_.num_snps, 0);
    full.n_case = stats.n_case;
    slot = std::move(full);
  } else if (slot->n_case != stats.n_case) {
    return make_error(Errc::bad_message,
                      "population size differs across summary tiles");
  }
  std::copy(stats.case_counts.begin(), stats.case_counts.end(),
            slot->case_counts.begin() + maf_plan_.begin(stats.tile_index));
  summary_tiles_[gdo_index][stats.tile_index] = true;
  return Status::success();
}

bool Coordinator::phase1_ready() const noexcept {
  for (std::uint32_t g = 0; g < num_gdos_; ++g) {
    if (g == leader_->gdo_index()) continue;  // leader's summary is local
    if (dead_gdos_.count(g) > 0) continue;    // dead GDOs never report
    for (std::uint32_t k = 0; k < maf_plan_.tile_count(); ++k) {
      if (!summary_tiles_[g][k]) return false;
    }
  }
  return true;
}

bool Coordinator::maf_tile_ready(std::uint32_t tile) const {
  for (std::uint32_t g = 0; g < num_gdos_; ++g) {
    if (g == leader_->gdo_index()) continue;
    if (dead_gdos_.count(g) > 0) continue;
    if (!summary_tiles_[g][tile]) return false;
  }
  return true;
}

void Coordinator::assess_maf_tile(std::uint32_t tile) {
  if (!maf_span_.has_value()) {
    maf_span_.emplace(obs::recorder_of(obs_), "phase.maf", study_span_);
  }
  const obs::ScopedSpan tile_span(obs::recorder_of(obs_),
                                  "maf.tile." + std::to_string(tile),
                                  maf_span_->id());
  obs::add_counter(obs_, "coordinator.maf_tiles");
  const double cutoff = announce_.config.maf_cutoff;
  const std::uint32_t begin = maf_plan_.begin(tile);
  const std::uint32_t width = maf_plan_.width_of(tile);
  if (!announce_.config.prune) {
    for (std::size_t c = 0; c < announce_.combinations.size(); ++c) {
      if (!combination_live(c)) continue;  // skip combos with dead members
      obs::add_counter(obs_, "coordinator.maf_combinations");
      obs::add_counter(obs_, "coordinator.maf_snps_evaluated", width);
      const auto& members = announce_.combinations[c];
      std::uint64_t n_total = reference_.num_individuals();
      for (std::uint32_t g : members) n_total += summaries_[g]->n_case;
      std::vector<double> maf(width, 0.0);
      for (std::uint32_t i = 0; i < width; ++i) {
        std::uint64_t count = reference_counts_[begin + i];
        for (std::uint32_t g : members) {
          count += summaries_[g]->case_counts[begin + i];
        }
        maf[i] = stats::minor_allele_frequency(count, n_total);
      }
      // maf_filter decides per SNP, so filtering the tile and offsetting the
      // survivors equals filtering the full vector restricted to the tile;
      // ascending-tile appends keep each combination's list sorted.
      for (std::uint32_t local : stats::maf_filter(maf, cutoff)) {
        maf_survivors_[c].push_back(begin + local);
      }
    }
    return;
  }
  // Intersection-aware sweep: the MAF decision is per SNP and independent of
  // every other SNP, so a SNP already killed by an earlier combination can
  // never re-enter the intersection — each later combination only evaluates
  // the ids still alive in this tile. The per-combination survivor lists it
  // records are subsets of the unpruned ones, but the missing elements were
  // killed elsewhere, so the final intersection is bit-identical.
  std::vector<std::uint32_t> mask(width);
  for (std::uint32_t i = 0; i < width; ++i) mask[i] = begin + i;
  const auto order = pruning_order();
  for (std::size_t idx = 0; idx < order.size(); ++idx) {
    const std::size_t c = order[idx];
    obs::add_counter(obs_, "coordinator.maf_combinations");
    obs::add_counter(obs_, "coordinator.maf_snps_evaluated", mask.size());
    const auto& members = announce_.combinations[c];
    std::uint64_t n_total = reference_.num_individuals();
    for (std::uint32_t g : members) n_total += summaries_[g]->n_case;
    std::vector<std::uint32_t> survivors;
    survivors.reserve(mask.size());
    for (std::uint32_t snp : mask) {
      std::uint64_t count = reference_counts_[snp];
      for (std::uint32_t g : members) {
        count += summaries_[g]->case_counts[snp];
      }
      if (stats::minor_allele_frequency(count, n_total) >= cutoff) {
        survivors.push_back(snp);
      }
    }
    for (std::uint32_t snp : survivors) maf_survivors_[c].push_back(snp);
    mask = std::move(survivors);
    maf_mask_contributors_[c] = true;
    // The trajectory entry sums across tiles (tiles are assessed in order,
    // so position idx accumulates every tile's post-combination mask size).
    if (pruning_.maf_mask_sizes.size() <= idx) {
      pruning_.maf_mask_sizes.resize(idx + 1, 0);
    }
    pruning_.maf_mask_sizes[idx] +=
        static_cast<std::uint32_t>(mask.size());
  }
}

void Coordinator::reassess_maf_tiles() {
  // A combination whose kills are folded into the masks died: its filter
  // decisions must be forgotten, so every assessed tile re-runs over the
  // currently-live set. Summaries are retained full-width, so this is pure
  // recomputation — no member round trips.
  obs::add_counter(obs_, "coordinator.maf_reassessments");
  ++pruning_.maf_reassessments;
  maf_survivors_.assign(announce_.combinations.size(), {});
  maf_mask_contributors_.assign(announce_.combinations.size(), false);
  pruning_.maf_mask_sizes.clear();
  for (std::uint32_t tile = 0; tile < next_maf_tile_; ++tile) {
    assess_maf_tile(tile);
  }
}

std::size_t Coordinator::assess_ready_maf_tiles() {
  // The leader's own summary enters directly (no network round trip).
  if (!summaries_[leader_->gdo_index()].has_value()) {
    summaries_[leader_->gdo_index()] = leader_->make_summary_stats();
  }
  std::size_t assessed = 0;
  while (next_maf_tile_ < maf_plan_.tile_count() &&
         maf_tile_ready(next_maf_tile_)) {
    assess_maf_tile(next_maf_tile_);
    ++next_maf_tile_;
    ++assessed;
  }
  return assessed;
}

Result<Phase1Result> Coordinator::run_maf_phase() {
  assess_ready_maf_tiles();
  if (!phase1_ready() || next_maf_tile_ < maf_plan_.tile_count()) {
    maf_span_.reset();
    return make_error(Errc::state_violation,
                      "MAF phase before all summaries arrived");
  }
  if (announce_.config.prune) {
    // The eager masks are only valid over combinations still alive: if a
    // contributor died after folding in its kills, re-assess everything
    // over the live set (matching what the unpruned path computes when it
    // drops the dead combination's list).
    bool contributor_died = false;
    for (std::size_t c = 0; c < announce_.combinations.size(); ++c) {
      if (maf_mask_contributors_[c] && !combination_live(c)) {
        contributor_died = true;
        break;
      }
    }
    if (contributor_died) reassess_maf_tiles();
  }
  std::vector<std::vector<std::uint32_t>> per_combination;
  per_combination.reserve(announce_.combinations.size());
  for (std::size_t c = 0; c < announce_.combinations.size(); ++c) {
    // Only combinations still live saw every tile assessed (liveness is
    // monotone); partially assessed lists of since-died combinations drop.
    if (combination_live(c)) per_combination.push_back(maf_survivors_[c]);
  }
  maf_span_.reset();
  if (per_combination.empty()) {
    return no_live_combination_error("MAF phase");
  }

  l_prime_ = intersect_sorted(per_combination);
  outcome_.l_prime = l_prime_;
  Phase1Result result;
  result.retained = l_prime_;
  return result;
}

std::vector<double> Coordinator::combination_chi2_p_values(
    const std::vector<std::uint32_t>& members,
    const std::vector<std::uint32_t>* only) const {
  std::uint64_t n_case = 0;
  for (std::uint32_t g : members) n_case += summaries_[g]->n_case;
  const std::uint64_t n_ref = reference_.num_individuals();
  std::vector<double> p_values(announce_.num_snps, 1.0);
  const auto one = [&](std::uint32_t l) {
    std::uint64_t case_minor = 0;
    for (std::uint32_t g : members) case_minor += summaries_[g]->case_counts[l];
    const stats::SinglewiseTable table{case_minor, n_case,
                                       reference_counts_[l], n_ref};
    p_values[l] = stats::chi2_p_value(table);
  };
  if (only != nullptr) {
    // The greedy LD walk ranks only the SNPs it visits, and it visits only
    // L' members — the remaining num_snps - |L'| values were dead weight.
    for (std::uint32_t l : *only) one(l);
    obs::add_counter(obs_, "coordinator.chi2_values_computed", only->size());
  } else {
    for (std::uint32_t l = 0; l < announce_.num_snps; ++l) one(l);
    obs::add_counter(obs_, "coordinator.chi2_values_computed",
                     announce_.num_snps);
  }
  return p_values;
}

common::Task<stats::LdMoments> Coordinator::aggregate_pair_async(
    const std::vector<std::uint32_t>& members, std::uint32_t a,
    std::uint32_t b, const AsyncFetchMoments& fetch) {
  const auto key = std::make_pair(a, b);
  auto cached = moments_cache_.find(key);
  if (cached == moments_cache_.end()) {
    PairMoments entry;
    entry.slots.resize(num_gdos_);
    // The leader computes its own moments locally (word-parallel planes).
    entry.slots[leader_->gdo_index()] =
        stats::compute_ld_moments(leader_->planes(), a, b);
    cached = moments_cache_.emplace(key, std::move(entry)).first;
    reference_moments_cache_.emplace(
        key, stats::compute_ld_moments(reference_planes_, a, b));
  }
  PairMoments& entry = cached->second;
  // Decide who to query this round. Legacy (unpruned) mode broadcasts to
  // every live member the first time a pair is touched, preserving the
  // original wire pattern; the pruned sweep fetches lazily — only the
  // combination at hand — so pairs resolved before the intersection dies
  // never pull moments from uninvolved members. In BOTH modes a slot that
  // is still empty for a live member gets a targeted (re)fetch before the
  // aggregation may fail: a stale hole left by an earlier mid-walk death
  // (the fetch round that created the entry lost a different member) used
  // to re-throw MissingMomentsError forever and falsely kill a healthy GDO.
  std::vector<std::uint32_t> targets;
  if (!announce_.config.prune && !entry.broadcast_done) {
    for (std::uint32_t g = 0; g < num_gdos_; ++g) {
      if (g == leader_->gdo_index()) continue;
      if (dead_gdos_.count(g) > 0) continue;
      if (!entry.slots[g].has_value()) targets.push_back(g);
    }
    entry.broadcast_done = true;
  } else {
    for (std::uint32_t g : members) {
      if (g == leader_->gdo_index()) continue;
      if (dead_gdos_.count(g) > 0) continue;
      if (!entry.slots[g].has_value()) targets.push_back(g);
    }
  }
  if (!targets.empty()) {
    MomentsRequest request;
    request.request_id = next_moments_request_++;
    request.snp_a = a;
    request.snp_b = b;
    std::vector<std::optional<stats::LdMoments>> fetched =
        co_await fetch(request, targets);
    fetched.resize(num_gdos_);
    // The fetch may have suspended; re-resolve the cache slot in case the
    // driver touched other pairs meanwhile (map nodes are stable, but stay
    // defensive against a future cache policy).
    PairMoments& slot = moments_cache_.at(key);
    for (std::uint32_t g : targets) {
      if (fetched[g].has_value()) slot.slots[g] = fetched[g];
    }
    obs::add_counter(obs_, "coordinator.ld_member_requests", targets.size());
  }
  const PairMoments& final_entry = moments_cache_.at(key);
  stats::LdMoments total = reference_moments_cache_.at(key);
  for (std::uint32_t g : members) {
    if (!final_entry.slots[g].has_value()) {
      // A missing response from a combination member must never silently
      // skew the aggregate with zero moments: the walk for this combination
      // aborts (run_ld_phase marks the GDO dead and drops the combination).
      throw MissingMomentsError{g};
    }
    total += *final_entry.slots[g];
  }
  co_return total;
}

Result<Phase2Result> Coordinator::run_ld_phase(const FetchMoments& fetch) {
  // Adapt the blocking callback onto the canonical sans-IO phase: nothing in
  // the adapted chain ever suspends, so run_sync drives it to completion on
  // this stack (trusted-module tests and local baselines use this path).
  return common::run_sync(run_ld_phase_async(
      [&fetch](const MomentsRequest& request,
               const std::vector<std::uint32_t>& targets)
          -> common::Task<std::vector<std::optional<stats::LdMoments>>> {
        co_return fetch(request, targets);
      }));
}

common::Task<Result<Phase2Result>> Coordinator::run_ld_phase_async(
    AsyncFetchMoments fetch) {
  const obs::ScopedSpan phase_span(obs::recorder_of(obs_), "phase.ld",
                                   study_span_);
  const std::size_t num_combinations = announce_.combinations.size();
  if (!announce_.config.prune) {
    std::vector<std::vector<std::uint32_t>> per_combination(num_combinations);
    std::vector<bool> computed(num_combinations, false);

    for (std::size_t c = 0; c < num_combinations; ++c) {
      if (!combination_live(c)) continue;
      const obs::ScopedSpan combination_span(
          obs::recorder_of(obs_), "ld.combination." + std::to_string(c),
          phase_span.id());
      obs::add_counter(obs_, "coordinator.ld_combinations");
      const auto& members = announce_.combinations[c];
      try {
        const std::vector<double> p_values =
            combination_chi2_p_values(members);
        auto pair_p_value = [this, &members, &fetch](
                                std::uint32_t a,
                                std::uint32_t b) -> common::Task<double> {
          co_return stats::ld_p_value(
              co_await aggregate_pair_async(members, a, b, fetch));
        };
        per_combination[c] = co_await stats::greedy_ld_prune_async(
            l_prime_, announce_.config.ld_cutoff, p_values, pair_p_value);
        computed[c] = true;
      } catch (const MissingMomentsError& missing) {
        // The GDO went silent mid-walk: declare it dead and keep going with
        // the combinations that do not need its data.
        dead_gdos_.insert(missing.gdo_index);
      }
    }

    // A death discovered mid-phase invalidates every combination containing
    // the dead GDO, including ones whose walk had already finished (their LR
    // matrices could never be gathered in phase 3).
    std::vector<std::vector<std::uint32_t>> live_lists;
    for (std::size_t c = 0; c < num_combinations; ++c) {
      if (computed[c] && combination_live(c)) {
        live_lists.push_back(std::move(per_combination[c]));
      }
    }
    if (live_lists.empty()) {
      co_return no_live_combination_error("LD phase");
    }
    l_double_prime_ = intersect_sorted(live_lists);
  } else {
    // Intersection-aware sweep. The greedy walk is order-sequential, so a
    // combination's walk must still run over all of L' — restricting it to
    // the running intersection would change anchor trajectories. What IS
    // exact: (a) chi-squared ranking restricted to L' (the walk reads no
    // other entry), (b) truncating each walk once its anchor passes the
    // largest id still in the running intersection I — every element of I
    // has its fate decided by then and the walk's tail cannot affect I ∩ R,
    // (c) skipping the remaining combinations outright when I is empty, and
    // (d) fetching pair moments only from the members of the combination at
    // hand. A pass restarts when a walk's MissingMomentsError kills a GDO
    // mid-phase: the fold may hold kills from combinations now dead, and
    // re-walking live combinations is pure cache-warm recomputation.
    std::vector<std::uint32_t> fold;
    for (;;) {
      const auto order = pruning_order();
      if (order.empty()) {
        co_return no_live_combination_error("LD phase");
      }
      fold = l_prime_;
      pruning_.ld_mask_sizes.clear();
      bool pass_ok = true;
      for (std::size_t idx = 0; idx < order.size(); ++idx) {
        if (fold.empty()) {
          const std::uint64_t skipped = order.size() - idx;
          pruning_.ld_walks_skipped += skipped;
          obs::add_counter(obs_, "coordinator.ld_walks_skipped", skipped);
          break;
        }
        const std::size_t c = order[idx];
        const obs::ScopedSpan combination_span(
            obs::recorder_of(obs_), "ld.combination." + std::to_string(c),
            phase_span.id());
        obs::add_counter(obs_, "coordinator.ld_combinations");
        const auto& members = announce_.combinations[c];
        try {
          const std::vector<double> p_values =
              combination_chi2_p_values(members, &l_prime_);
          auto pair_p_value = [this, &members, &fetch](
                                  std::uint32_t a,
                                  std::uint32_t b) -> common::Task<double> {
            co_return stats::ld_p_value(
                co_await aggregate_pair_async(members, a, b, fetch));
          };
          const std::vector<std::uint32_t> walked =
              co_await stats::greedy_ld_prune_resolving_async(
                  l_prime_, announce_.config.ld_cutoff, p_values,
                  pair_p_value, fold.back());
          fold = intersect_sorted({fold, walked});
          pruning_.ld_mask_sizes.push_back(
              static_cast<std::uint32_t>(fold.size()));
        } catch (const MissingMomentsError& missing) {
          dead_gdos_.insert(missing.gdo_index);
          pass_ok = false;
          break;
        }
      }
      if (pass_ok) break;
      obs::add_counter(obs_, "coordinator.ld_reassessments");
      ++pruning_.ld_reassessments;
    }
    l_double_prime_ = std::move(fold);
  }
  outcome_.l_double_prime = l_double_prime_;
  obs::add_counter(obs_, "coordinator.ld_pairs_fetched",
                   moments_cache_.size());

  Phase2Result result;
  result.retained = l_double_prime_;
  result.reference_freq.resize(l_double_prime_.size());
  const std::uint64_t n_ref = reference_.num_individuals();
  for (std::size_t i = 0; i < l_double_prime_.size(); ++i) {
    result.reference_freq[i] =
        n_ref == 0 ? 0.0
                   : static_cast<double>(
                         reference_counts_[l_double_prime_[i]]) /
                         static_cast<double>(n_ref);
  }
  // Per-GDO counts over L'' instead of per-combination frequency vectors:
  // O(G·m) on the wire instead of O(C·m); members derive any combination's
  // frequencies locally. Dead GDOs keep an empty slot so indices stay
  // stable.
  result.case_counts_per_gdo.resize(num_gdos_);
  result.n_case_per_gdo.assign(num_gdos_, 0);
  for (std::uint32_t g = 0; g < num_gdos_; ++g) {
    if (dead_gdos_.count(g) > 0 || !summaries_[g].has_value()) continue;
    auto& counts = result.case_counts_per_gdo[g];
    counts.resize(l_double_prime_.size());
    for (std::size_t i = 0; i < l_double_prime_.size(); ++i) {
      counts[i] = summaries_[g]->case_counts[l_double_prime_[i]];
    }
    result.n_case_per_gdo[g] = summaries_[g]->n_case;
  }
  result.dead_gdos.assign(dead_gdos_.begin(), dead_gdos_.end());
  // The leader derives its own per-combination frequencies through the same
  // helper the members use, so every party's LR weights are bit-identical.
  case_freq_per_combination_.clear();
  for (std::size_t c = 0; c < num_combinations; ++c) {
    case_freq_per_combination_.push_back(
        combination_live(c)
            ? result.combination_case_freq(announce_.combinations[c])
            : std::vector<double>{});
  }
  reference_freq_ = result.reference_freq;

  // Fix the phase-3 tile plan over L'' and size the per-tile stores. From
  // here on, phase-2 bodies, member LR matrices, and the leader's own
  // derivations all travel and compute in L''-column tiles.
  lr_plan_ = genome::TilePlan::over(
      static_cast<std::uint32_t>(l_double_prime_.size()),
      announce_.config.snp_tile_width);
  lr_matrix_tiles_.assign(
      num_combinations,
      std::vector<std::map<std::uint32_t, stats::LrMatrix>>(
          lr_plan_.tile_count()));
  leader_tiles_.assign(num_combinations,
                       std::vector<stats::LrMatrix>(lr_plan_.tile_count()));
  reference_tiles_.assign(
      num_combinations, std::vector<stats::LrMatrix>(lr_plan_.tile_count()));
  next_lr_tile_ = 0;
  phase2_full_ = result;
  co_return result;
}

std::vector<Phase2Result> Coordinator::phase2_tiles() const {
  std::vector<Phase2Result> tiles;
  tiles.reserve(lr_plan_.tile_count());
  for (std::uint32_t k = 0; k < lr_plan_.tile_count(); ++k) {
    Phase2Result tile;
    tile.retained = lr_plan_.slice(phase2_full_.retained, k);
    tile.reference_freq = lr_plan_.slice(phase2_full_.reference_freq, k);
    tile.case_counts_per_gdo.resize(num_gdos_);
    for (std::uint32_t g = 0; g < num_gdos_; ++g) {
      // Dead GDOs keep their (empty) slot in every tile.
      if (!phase2_full_.case_counts_per_gdo[g].empty()) {
        tile.case_counts_per_gdo[g] =
            lr_plan_.slice(phase2_full_.case_counts_per_gdo[g], k);
      }
    }
    tile.n_case_per_gdo = phase2_full_.n_case_per_gdo;
    tile.dead_gdos = phase2_full_.dead_gdos;
    tile.tile_index = k;
    tile.num_tiles = lr_plan_.tile_count();
    tiles.push_back(std::move(tile));
  }
  return tiles;
}

Status Coordinator::add_lr_matrices(std::uint32_t gdo_index,
                                    const LrMatrices& matrices) {
  if (gdo_index >= num_gdos_) {
    return make_error(Errc::unknown_peer, "LR matrices from unknown GDO");
  }
  if (lr_matrix_tiles_.size() != announce_.combinations.size()) {
    return make_error(Errc::state_violation, "LR matrices before LD phase");
  }
  if (matrices.tile_index >= lr_plan_.tile_count()) {
    return make_error(Errc::bad_message, "LR matrices tile index out of range");
  }
  for (const auto& entry : matrices.entries) {
    if (entry.combination_id >= announce_.combinations.size()) {
      return make_error(Errc::bad_message, "unknown combination id");
    }
    const auto& members = announce_.combinations[entry.combination_id];
    if (std::find(members.begin(), members.end(), gdo_index) ==
        members.end()) {
      return make_error(Errc::bad_message,
                        "LR matrix from GDO outside the combination");
    }
    if (entry.matrix.cols() != lr_plan_.width_of(matrices.tile_index)) {
      return make_error(Errc::bad_message, "LR matrix column mismatch");
    }
    if (entry.matrix.rows() != summaries_[gdo_index]->n_case) {
      return make_error(Errc::bad_message, "LR matrix row count mismatch");
    }
    lr_matrix_tiles_[entry.combination_id][matrices.tile_index][gdo_index] =
        entry.matrix;
  }
  return Status::success();
}

bool Coordinator::phase3_ready() const noexcept {
  if (lr_matrix_tiles_.size() != announce_.combinations.size()) return false;
  for (std::size_t c = 0; c < announce_.combinations.size(); ++c) {
    if (!combination_live(c)) continue;  // dead combos gather nothing
    for (std::uint32_t g : announce_.combinations[c]) {
      if (g == leader_->gdo_index()) continue;  // computed locally
      for (std::uint32_t k = 0; k < lr_plan_.tile_count(); ++k) {
        if (lr_matrix_tiles_[c][k].find(g) == lr_matrix_tiles_[c][k].end()) {
          return false;
        }
      }
    }
  }
  return true;
}

Status Coordinator::derive_leader_lr_tile(std::uint32_t tile) {
  if (!lr_span_.has_value()) {
    lr_span_.emplace(obs::recorder_of(obs_), "phase.lr", study_span_);
  }
  const obs::ScopedSpan tile_span(obs::recorder_of(obs_),
                                  "lr.tile." + std::to_string(tile),
                                  lr_span_->id());
  const std::vector<std::uint32_t> retained =
      lr_plan_.slice(l_double_prime_, tile);
  std::vector<std::size_t> live;
  for (std::size_t c = 0; c < announce_.combinations.size(); ++c) {
    if (combination_live(c)) live.push_back(c);
  }
  // One EPC-charged per-tile basis at a time keeps the leader's transient
  // working set O(tile) — the flat-memory half of the pipelined engine.
  const bool leader_in_live = std::any_of(
      live.begin(), live.end(), [this](std::size_t c) {
        const auto& members = announce_.combinations[c];
        return std::find(members.begin(), members.end(),
                         leader_->gdo_index()) != members.end();
      });
  stats::LrBasis leader_basis;
  tee::EpcAllocation leader_basis_epc;
  if (leader_in_live) {
    leader_basis = stats::LrBasis(leader_->planes(), retained);
    auto epc = leader_->reserve_epc(leader_basis.storage_bytes());
    if (!epc.ok()) return epc.error();
    leader_basis_epc = std::move(epc).take();
    obs::add_counter(obs_, "lr.basis_builds");
    obs::observe(obs_, "epc.leader.tile_bytes",
                 static_cast<double>(leader_->platform().epc().in_use()));
  }
  const stats::LrBasis reference_basis(reference_planes_, retained);
  obs::add_counter(obs_, "lr.reference_basis_builds");
  if (!announce_.config.prune) {
    for (std::size_t c : live) {
      const auto& members = announce_.combinations[c];
      // Per-column weights slice exactly (lr_weights maps each column
      // independently), so per-tile derivations are bit-identical column
      // slices of the monolithic matrices.
      const stats::LrWeights weights = stats::lr_weights(
          lr_plan_.slice(case_freq_per_combination_[c], tile),
          lr_plan_.slice(reference_freq_, tile));
      if (std::find(members.begin(), members.end(), leader_->gdo_index()) !=
          members.end()) {
        leader_tiles_[c][tile] = leader_basis.derive(weights);
        obs::add_counter(obs_, "lr.combination_matvecs");
      }
      reference_tiles_[c][tile] = reference_basis.derive(weights);
      obs::add_counter(obs_, "lr.reference_matvecs");
    }
    return Status::success();
  }
  // Intersection-aware sweep: adjacent combinations in the evaluation order
  // share G-f-1 members, so most weight columns repeat; each chain derives
  // its head in full and delta-updates every successor in place (only
  // columns whose weight pair changed are rewritten — derive_update leaves
  // the rest byte-identical to a fresh derivation). Full derives keep the
  // legacy matvec counters; delta work is disclosed by its own counters.
  const auto order = pruning_order();
  const std::size_t width = retained.size();
  std::optional<stats::LrWeights> prev_leader_weights;
  std::optional<stats::LrWeights> prev_reference_weights;
  const stats::LrMatrix* prev_leader_matrix = nullptr;
  const stats::LrMatrix* prev_reference_matrix = nullptr;
  for (std::size_t c : order) {
    const auto& members = announce_.combinations[c];
    stats::LrWeights weights = stats::lr_weights(
        lr_plan_.slice(case_freq_per_combination_[c], tile),
        lr_plan_.slice(reference_freq_, tile));
    if (std::find(members.begin(), members.end(), leader_->gdo_index()) !=
        members.end()) {
      if (prev_leader_matrix == nullptr) {
        leader_tiles_[c][tile] = leader_basis.derive(weights);
        obs::add_counter(obs_, "lr.combination_matvecs");
      } else {
        leader_tiles_[c][tile] = *prev_leader_matrix;
        const std::size_t changed = leader_basis.derive_update(
            *prev_leader_weights, weights, leader_tiles_[c][tile]);
        obs::add_counter(obs_, "lr.combination_delta_updates");
        obs::add_counter(obs_, "lr.delta_columns_updated", changed);
        obs::add_counter(obs_, "lr.delta_columns_total", width);
      }
      prev_leader_matrix = &leader_tiles_[c][tile];
      prev_leader_weights = weights;
    }
    if (prev_reference_matrix == nullptr) {
      reference_tiles_[c][tile] = reference_basis.derive(weights);
      obs::add_counter(obs_, "lr.reference_matvecs");
    } else {
      reference_tiles_[c][tile] = *prev_reference_matrix;
      const std::size_t changed = reference_basis.derive_update(
          *prev_reference_weights, weights, reference_tiles_[c][tile]);
      obs::add_counter(obs_, "lr.reference_delta_updates");
      obs::add_counter(obs_, "lr.delta_columns_updated", changed);
      obs::add_counter(obs_, "lr.delta_columns_total", width);
    }
    prev_reference_matrix = &reference_tiles_[c][tile];
    prev_reference_weights = std::move(weights);
  }
  return Status::success();
}

Status Coordinator::derive_leader_lr_tiles() {
  if (leader_tiles_.size() != announce_.combinations.size()) {
    return make_error(Errc::state_violation,
                      "leader LR derivations before LD phase");
  }
  while (next_lr_tile_ < lr_plan_.tile_count()) {
    if (Status s = derive_leader_lr_tile(next_lr_tile_); !s.ok()) return s;
    ++next_lr_tile_;
  }
  return Status::success();
}

namespace {
/// Reassembles a full-width matrix from its per-tile column slices. Pure
/// cell copies, so the result is bit-identical to a monolithic build; the
/// single-tile plan short-circuits to a plain copy.
template <typename PieceFn>
stats::LrMatrix assemble_column_tiles(const genome::TilePlan& plan,
                                      PieceFn&& piece) {
  if (plan.tile_count() == 0) return stats::LrMatrix();  // nothing survived
  if (plan.tile_count() == 1) return piece(0);
  const std::size_t rows = piece(0).rows();
  const std::size_t total = plan.total();
  stats::LrMatrix out(rows, total);
  double* dst = out.values().data();
  for (std::uint32_t k = 0; k < plan.tile_count(); ++k) {
    const stats::LrMatrix& p = piece(k);
    const std::size_t width = p.cols();
    const double* src = p.values().data();
    for (std::size_t r = 0; r < rows; ++r) {
      std::copy(src + r * width, src + (r + 1) * width,
                dst + r * total + plan.begin(k));
    }
  }
  return out;
}
}  // namespace

Result<Phase3Result> Coordinator::run_lr_phase(common::ThreadPool* pool) {
  // Leader-side tile derivations normally ran pipelined (while members
  // computed theirs); finish whatever remains, then select globally.
  if (Status s = derive_leader_lr_tiles(); !s.ok()) {
    lr_span_.reset();
    return s.error();
  }
  if (!lr_span_.has_value()) {
    // An empty phase-3 plan (nothing survived phase 2) derives no tiles, so
    // the phase span was never opened lazily; open it here so the selection
    // spans below have their parent and the trace keeps every phase.
    lr_span_.emplace(obs::recorder_of(obs_), "phase.lr", study_span_);
  }
  if (!phase3_ready()) {
    lr_span_.reset();
    return make_error(Errc::state_violation,
                      "LR phase before all matrices arrived");
  }
  const std::size_t num_combinations = announce_.combinations.size();
  std::vector<std::size_t> live;
  live.reserve(num_combinations);
  for (std::size_t c = 0; c < num_combinations; ++c) {
    if (combination_live(c)) live.push_back(c);
  }
  if (live.empty()) {
    lr_span_.reset();
    return no_live_combination_error("LR phase");
  }
  std::vector<std::vector<std::uint32_t>> per_combination(num_combinations);
  std::vector<double> per_combination_power(num_combinations, 0.0);

  // With several combinations the pool fans out across them; with a single
  // combination it is threaded into the selection kernel instead. Never
  // both: a nested parallel_for from inside a pool worker could starve.
  // The pruned sweep evaluates serially regardless (eager intersection is
  // order-sequential), so the pool always threads into the selection.
  const bool parallel_combinations =
      !announce_.config.prune && pool != nullptr && live.size() > 1;
  common::ThreadPool* selection_pool = parallel_combinations ? nullptr : pool;

  auto evaluate = [&](std::size_t c) {
    // Combination spans may open concurrently on pool workers; the recorder
    // is thread-safe and parents are explicit, so nesting stays correct.
    const obs::ScopedSpan combination_span(
        obs::recorder_of(obs_), "lr.combination." + std::to_string(c),
        lr_span_->id());
    obs::add_counter(obs_, "coordinator.lr_combinations");
    const auto& members = announce_.combinations[c];
    // The selection is a global greedy over all of L'' (running per-row
    // sums), so full-width matrices reassemble from the gathered column
    // tiles first; every cell is an exact copy of its tiled counterpart.
    stats::LrMatrix merged;
    for (std::uint32_t g : members) {  // ascending GDO order by construction
      if (g == leader_->gdo_index()) {
        merged.append_rows(assemble_column_tiles(
            lr_plan_,
            [&](std::uint32_t k) -> const stats::LrMatrix& {
              return leader_tiles_[c][k];
            }));
      } else {
        merged.append_rows(assemble_column_tiles(
            lr_plan_,
            [&](std::uint32_t k) -> const stats::LrMatrix& {
              return lr_matrix_tiles_[c][k].at(g);
            }));
      }
    }
    const stats::LrMatrix reference_lr = assemble_column_tiles(
        lr_plan_, [&](std::uint32_t k) -> const stats::LrMatrix& {
          return reference_tiles_[c][k];
        });
    stats::LrSelectionParams params;
    params.false_positive_rate = announce_.config.lr_false_positive_rate;
    params.power_threshold = announce_.config.lr_power_threshold;
    const stats::LrSelectionResult selection =
        stats::select_safe_snps(merged, reference_lr, params, selection_pool);
    std::vector<std::uint32_t> safe;
    safe.reserve(selection.safe_columns.size());
    for (std::uint32_t column : selection.safe_columns) {
      safe.push_back(l_double_prime_[column]);
    }
    per_combination[c] = std::move(safe);
    per_combination_power[c] = selection.final_power;
  };

  if (announce_.config.prune) {
    // Eager fold over the evaluation order. Each selection still runs over
    // all of L'' (the greedy subset search is order-dependent, so column
    // restriction would change it); only the intersection is folded early,
    // and once it is empty the remaining selections cannot resurrect a SNP
    // — they are skipped outright. Skipping can leave final_power short of
    // the unpruned maximum, but only when L_safe is already empty; the
    // safe set itself stays bit-identical.
    const auto order = pruning_order();
    std::vector<std::uint32_t> fold = l_double_prime_;
    double max_power = 0.0;
    bool any_evaluated = false;
    for (std::size_t idx = 0; idx < order.size(); ++idx) {
      if (any_evaluated && fold.empty()) {
        const std::uint64_t skipped = order.size() - idx;
        pruning_.lr_selections_skipped += skipped;
        obs::add_counter(obs_, "lr.selections_skipped", skipped);
        break;
      }
      const std::size_t c = order[idx];
      evaluate(c);
      any_evaluated = true;
      fold = intersect_sorted({fold, per_combination[c]});
      pruning_.lr_mask_sizes.push_back(
          static_cast<std::uint32_t>(fold.size()));
      max_power = std::max(max_power, per_combination_power[c]);
    }
    outcome_.l_safe = std::move(fold);
    outcome_.final_power = max_power;
  } else {
    if (parallel_combinations) {
      pool->parallel_for(live.size(),
                         [&](std::size_t i) { evaluate(live[i]); });
    } else {
      for (std::size_t c : live) evaluate(c);
    }

    std::vector<std::vector<std::uint32_t>> live_lists;
    std::vector<double> live_powers;
    live_lists.reserve(live.size());
    for (std::size_t c : live) {
      live_lists.push_back(std::move(per_combination[c]));
      live_powers.push_back(per_combination_power[c]);
    }
    outcome_.l_safe = intersect_sorted(live_lists);
    outcome_.final_power =
        live_powers.empty()
            ? 0.0
            : *std::max_element(live_powers.begin(), live_powers.end());
  }
  lr_span_.reset();
  Phase3Result result;
  result.safe = outcome_.l_safe;
  result.final_power = outcome_.final_power;
  return result;
}

}  // namespace gendpr::core
