// One-call federation runner: wires up the network fabric, quoting
// authority, per-GDO platforms and nodes, elects a leader, runs the study,
// and tears everything down. This is the public entry point the examples,
// integration tests, and benchmark harness build on.
#pragma once

#include <cstdint>

#include "common/error.hpp"
#include "gendpr/config.hpp"
#include "gendpr/node.hpp"
#include "genome/cohort.hpp"
#include "obs/observability.hpp"

namespace gendpr::core {

struct FederationSpec {
  /// How the nodes talk to each other. `in_process` is the classic fabric:
  /// one thread per node over net::Network mailboxes. `epoll` runs every
  /// GDO as a sans-IO session on EpollHub sockets (loopback TCP) driven by
  /// event loops — same sessions, same bytes, same results. `uring` is the
  /// same wiring on io_uring-backed hubs (completion model), falling back
  /// to epoll with a log line on kernels without io_uring. The
  /// GENDPR_TRANSPORT environment variable ("epoll" / "uring" /
  /// "in_process") overrides this field when set.
  enum class TransportMode { in_process, epoll, uring };
  TransportMode transport = TransportMode::in_process;

  /// Number of event-loop threads the epoll/uring transports shard their
  /// sessions across (sessions are assigned by a stable hash of the GDO
  /// index, so the placement — and every protocol byte — is independent of
  /// thread timing). 1 = the classic single-loop mode, run on the calling
  /// thread. Capped at the number of GDOs. The GENDPR_EVENT_LOOPS
  /// environment variable overrides this field when set.
  std::uint32_t event_loops = 1;

  std::uint32_t num_gdos = 3;
  /// Study thresholds, plus the engine shape: `config.snp_tile_width`
  /// rides in the announce, so setting it here turns the whole federation
  /// tiled (per-tile phase-1/phase-3 messages, pipelined leader
  /// assessment) without changing any result bits.
  StudyConfig config;
  CollusionPolicy policy = CollusionPolicy::none();
  /// Seeds leader election and all simulation crypto (deterministic runs).
  std::uint64_t seed = 7;
  /// Simulated EPC limit per platform.
  std::uint64_t epc_limit = tee::EpcMeter::kDefaultLimitBytes;
  /// Evaluate per-combination LR selections in parallel inside the leader
  /// enclave (§5.6: "efficiently conducted in parallel").
  bool parallel_combinations = true;
  /// Deadline for every protocol wait on every node, in milliseconds.
  /// 0 preserves the paper's original semantics (block forever). With a
  /// deadline, an unresponsive GDO is declared dead: the study either
  /// completes on the surviving combinations or aborts with Errc::timeout
  /// naming the dead peer(s).
  std::uint32_t receive_timeout_ms = 0;
  /// Run-wide observability bundle (nullptr = unobserved). When set, the
  /// runner opens the root "study" span, every node and the coordinator
  /// record spans/metrics into it, and the teardown path exports per-link
  /// traffic, per-GDO EPC peaks, and thread-pool statistics into the
  /// registry so a RunReport can be serialized after the call returns. The
  /// bundle must outlive the call; the caller owns it.
  obs::Observability* obs = nullptr;
};

/// Runs a full federated GenDPR study over `cohort`: case genomes are split
/// equally among `spec.num_gdos` GDOs; the control population serves as the
/// public reference panel. Blocking; returns when all nodes finished.
common::Result<StudyResult> run_federated_study(const genome::Cohort& cohort,
                                                const FederationSpec& spec);

}  // namespace gendpr::core
