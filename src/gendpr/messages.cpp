#include "gendpr/messages.hpp"

#include "wire/serialize.hpp"

namespace gendpr::core {

using common::Errc;
using common::make_error;
using common::Result;

namespace {

common::Error trailing() {
  return make_error(Errc::bad_message, "trailing bytes after message");
}

/// Encoded-size helpers mirroring wire::Writer's formats, so every
/// encoded_size() is exact — serialization reserves once and never regrows.
std::size_t varint_size(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

std::size_t vec_u32_size(const std::vector<std::uint32_t>& v) {
  return varint_size(v.size()) + 4 * v.size();
}

std::size_t vec_f64_size(const std::vector<double>& v) {
  return varint_size(v.size()) + 8 * v.size();
}

/// 4 f64 fields + u32 tile width + u8 prune flag (see write_config).
constexpr std::size_t kConfigBytes = 4 * 8 + 4 + 1;

void write_config(wire::Writer& w, const StudyConfig& config) {
  w.f64(config.maf_cutoff);
  w.f64(config.ld_cutoff);
  w.f64(config.lr_false_positive_rate);
  w.f64(config.lr_power_threshold);
  w.u32(config.snp_tile_width);
  w.u8(config.prune ? 1 : 0);
}

Result<StudyConfig> read_config(wire::Reader& r) {
  StudyConfig config;
  for (double* field : {&config.maf_cutoff, &config.ld_cutoff,
                        &config.lr_false_positive_rate,
                        &config.lr_power_threshold}) {
    auto v = r.f64();
    if (!v.ok()) return v.error();
    *field = v.value();
  }
  auto width = r.u32();
  if (!width.ok()) return width.error();
  config.snp_tile_width = width.value();
  auto prune = r.u8();
  if (!prune.ok()) return prune.error();
  config.prune = prune.value() != 0;
  return config;
}

std::size_t matrix_size(const stats::LrMatrix& m) {
  return 4 + 4 + 8 * m.values().size();
}

void write_matrix(wire::Writer& w, const stats::LrMatrix& m) {
  w.u32(static_cast<std::uint32_t>(m.rows()));
  w.u32(static_cast<std::uint32_t>(m.cols()));
  for (double v : m.values()) w.f64(v);
}

Result<stats::LrMatrix> read_matrix(wire::Reader& r) {
  auto rows = r.u32();
  if (!rows.ok()) return rows.error();
  auto cols = r.u32();
  if (!cols.ok()) return cols.error();
  const std::uint64_t cells =
      static_cast<std::uint64_t>(rows.value()) * cols.value();
  if (cells > r.remaining() / 8) {
    return make_error(Errc::bad_message, "LR matrix body truncated");
  }
  stats::LrMatrix m(rows.value(), cols.value());
  for (std::uint64_t i = 0; i < cells; ++i) {
    m.values()[i] = r.f64().value();  // size pre-validated
  }
  return m;
}

/// One exact-sized serialization: reserve encoded_size(), write, take.
template <typename M>
common::Bytes serialize_exact(const M& msg) {
  wire::Writer w;
  w.reserve(msg.encoded_size());
  msg.serialize_into(w);
  return std::move(w).take();
}

}  // namespace

std::size_t StudyAnnounce::encoded_size() const {
  std::size_t size = 8 + 4 + kConfigBytes + varint_size(combinations.size());
  for (const auto& combination : combinations) {
    size += vec_u32_size(combination);
  }
  return size;
}

void StudyAnnounce::serialize_into(wire::Writer& w) const {
  w.u64(study_id);
  w.u32(num_snps);
  write_config(w, config);
  w.varint(combinations.size());
  for (const auto& combination : combinations) {
    w.vector_u32(combination);
  }
}

common::Bytes StudyAnnounce::serialize() const { return serialize_exact(*this); }

Result<StudyAnnounce> StudyAnnounce::deserialize(common::BytesView data) {
  wire::Reader r(data);
  StudyAnnounce msg;
  auto id = r.u64();
  if (!id.ok()) return id.error();
  msg.study_id = id.value();
  auto snps = r.u32();
  if (!snps.ok()) return snps.error();
  msg.num_snps = snps.value();
  auto config = read_config(r);
  if (!config.ok()) return config.error();
  msg.config = config.value();
  auto count = r.varint();
  if (!count.ok()) return count.error();
  for (std::uint64_t i = 0; i < count.value(); ++i) {
    auto combination = r.vector_u32();
    if (!combination.ok()) return combination.error();
    msg.combinations.push_back(std::move(combination).take());
  }
  if (!r.exhausted()) return trailing();
  return msg;
}

std::size_t SummaryStats::encoded_size() const {
  return vec_u32_size(case_counts) + 4 + 4;
}

void SummaryStats::serialize_into(wire::Writer& w) const {
  w.vector_u32(case_counts);
  w.u32(n_case);
  w.u32(tile_index);
}

common::Bytes SummaryStats::serialize() const { return serialize_exact(*this); }

Result<SummaryStats> SummaryStats::deserialize(common::BytesView data) {
  wire::Reader r(data);
  SummaryStats msg;
  auto counts = r.vector_u32();
  if (!counts.ok()) return counts.error();
  msg.case_counts = std::move(counts).take();
  auto n = r.u32();
  if (!n.ok()) return n.error();
  msg.n_case = n.value();
  auto tile = r.u32();
  if (!tile.ok()) return tile.error();
  msg.tile_index = tile.value();
  if (!r.exhausted()) return trailing();
  return msg;
}

std::size_t Phase1Result::encoded_size() const {
  return vec_u32_size(retained);
}

void Phase1Result::serialize_into(wire::Writer& w) const {
  w.vector_u32(retained);
}

common::Bytes Phase1Result::serialize() const { return serialize_exact(*this); }

Result<Phase1Result> Phase1Result::deserialize(common::BytesView data) {
  wire::Reader r(data);
  Phase1Result msg;
  auto retained = r.vector_u32();
  if (!retained.ok()) return retained.error();
  msg.retained = std::move(retained).take();
  if (!r.exhausted()) return trailing();
  return msg;
}

std::size_t MomentsRequest::encoded_size() const { return 3 * 4; }

void MomentsRequest::serialize_into(wire::Writer& w) const {
  w.u32(request_id);
  w.u32(snp_a);
  w.u32(snp_b);
}

common::Bytes MomentsRequest::serialize() const {
  return serialize_exact(*this);
}

Result<MomentsRequest> MomentsRequest::deserialize(common::BytesView data) {
  wire::Reader r(data);
  MomentsRequest msg;
  for (std::uint32_t* field : {&msg.request_id, &msg.snp_a, &msg.snp_b}) {
    auto v = r.u32();
    if (!v.ok()) return v.error();
    *field = v.value();
  }
  if (!r.exhausted()) return trailing();
  return msg;
}

std::size_t MomentsResponse::encoded_size() const { return 4 + 5 * 8 + 8; }

void MomentsResponse::serialize_into(wire::Writer& w) const {
  w.u32(request_id);
  w.f64(moments.mu_x);
  w.f64(moments.mu_y);
  w.f64(moments.mu_xy);
  w.f64(moments.mu_x2);
  w.f64(moments.mu_y2);
  w.u64(moments.n);
}

common::Bytes MomentsResponse::serialize() const {
  return serialize_exact(*this);
}

Result<MomentsResponse> MomentsResponse::deserialize(common::BytesView data) {
  wire::Reader r(data);
  MomentsResponse msg;
  auto id = r.u32();
  if (!id.ok()) return id.error();
  msg.request_id = id.value();
  for (double* field : {&msg.moments.mu_x, &msg.moments.mu_y,
                        &msg.moments.mu_xy, &msg.moments.mu_x2,
                        &msg.moments.mu_y2}) {
    auto v = r.f64();
    if (!v.ok()) return v.error();
    *field = v.value();
  }
  auto n = r.u64();
  if (!n.ok()) return n.error();
  msg.moments.n = n.value();
  if (!r.exhausted()) return trailing();
  return msg;
}

std::vector<double> Phase2Result::combination_case_freq(
    const std::vector<std::uint32_t>& members) const {
  std::uint64_t n_total = 0;
  for (std::uint32_t g : members) n_total += n_case_per_gdo[g];
  std::vector<double> freq(retained.size(), 0.0);
  for (std::size_t i = 0; i < retained.size(); ++i) {
    std::uint64_t count = 0;
    for (std::uint32_t g : members) count += case_counts_per_gdo[g][i];
    freq[i] = n_total == 0
                  ? 0.0
                  : static_cast<double>(count) / static_cast<double>(n_total);
  }
  return freq;
}

std::size_t Phase2Result::encoded_size() const {
  std::size_t size = vec_u32_size(retained) + vec_f64_size(reference_freq) +
                     varint_size(case_counts_per_gdo.size());
  for (const auto& counts : case_counts_per_gdo) {
    size += vec_u32_size(counts);
  }
  size += vec_u32_size(n_case_per_gdo) + vec_u32_size(dead_gdos) + 4 + 4;
  return size;
}

void Phase2Result::serialize_into(wire::Writer& w) const {
  w.vector_u32(retained);
  w.vector_f64(reference_freq);
  w.varint(case_counts_per_gdo.size());
  for (const auto& counts : case_counts_per_gdo) {
    w.vector_u32(counts);
  }
  w.vector_u32(n_case_per_gdo);
  w.vector_u32(dead_gdos);
  w.u32(tile_index);
  w.u32(num_tiles);
}

common::Bytes Phase2Result::serialize() const { return serialize_exact(*this); }

Result<Phase2Result> Phase2Result::deserialize(common::BytesView data) {
  wire::Reader r(data);
  Phase2Result msg;
  auto retained = r.vector_u32();
  if (!retained.ok()) return retained.error();
  msg.retained = std::move(retained).take();
  auto ref_freq = r.vector_f64();
  if (!ref_freq.ok()) return ref_freq.error();
  msg.reference_freq = std::move(ref_freq).take();
  auto count = r.varint();
  if (!count.ok()) return count.error();
  for (std::uint64_t i = 0; i < count.value(); ++i) {
    auto counts = r.vector_u32();
    if (!counts.ok()) return counts.error();
    msg.case_counts_per_gdo.push_back(std::move(counts).take());
  }
  auto n_case = r.vector_u32();
  if (!n_case.ok()) return n_case.error();
  msg.n_case_per_gdo = std::move(n_case).take();
  if (msg.n_case_per_gdo.size() != msg.case_counts_per_gdo.size()) {
    return make_error(Errc::bad_message,
                      "per-GDO population vector size mismatch");
  }
  auto dead = r.vector_u32();
  if (!dead.ok()) return dead.error();
  msg.dead_gdos = std::move(dead).take();
  auto tile = r.u32();
  if (!tile.ok()) return tile.error();
  msg.tile_index = tile.value();
  auto tiles = r.u32();
  if (!tiles.ok()) return tiles.error();
  msg.num_tiles = tiles.value();
  if (msg.num_tiles == 0 || msg.tile_index >= msg.num_tiles) {
    return make_error(Errc::bad_message, "phase2 tile index out of range");
  }
  if (!r.exhausted()) return trailing();
  return msg;
}

std::size_t LrMatrices::encoded_size() const {
  std::size_t size = varint_size(entries.size());
  for (const Entry& entry : entries) {
    size += 4 + matrix_size(entry.matrix);
  }
  return size + 4;
}

void LrMatrices::serialize_into(wire::Writer& w) const {
  w.varint(entries.size());
  for (const Entry& entry : entries) {
    w.u32(entry.combination_id);
    write_matrix(w, entry.matrix);
  }
  w.u32(tile_index);
}

common::Bytes LrMatrices::serialize() const { return serialize_exact(*this); }

Result<LrMatrices> LrMatrices::deserialize(common::BytesView data) {
  wire::Reader r(data);
  LrMatrices msg;
  auto count = r.varint();
  if (!count.ok()) return count.error();
  for (std::uint64_t i = 0; i < count.value(); ++i) {
    Entry entry;
    auto id = r.u32();
    if (!id.ok()) return id.error();
    entry.combination_id = id.value();
    auto matrix = read_matrix(r);
    if (!matrix.ok()) return matrix.error();
    entry.matrix = std::move(matrix).take();
    msg.entries.push_back(std::move(entry));
  }
  auto tile = r.u32();
  if (!tile.ok()) return tile.error();
  msg.tile_index = tile.value();
  if (!r.exhausted()) return trailing();
  return msg;
}

std::size_t Phase3Result::encoded_size() const {
  return vec_u32_size(safe) + 8;
}

void Phase3Result::serialize_into(wire::Writer& w) const {
  w.vector_u32(safe);
  w.f64(final_power);
}

common::Bytes Phase3Result::serialize() const { return serialize_exact(*this); }

Result<Phase3Result> Phase3Result::deserialize(common::BytesView data) {
  wire::Reader r(data);
  Phase3Result msg;
  auto safe = r.vector_u32();
  if (!safe.ok()) return safe.error();
  msg.safe = std::move(safe).take();
  auto power = r.f64();
  if (!power.ok()) return power.error();
  msg.final_power = power.value();
  if (!r.exhausted()) return trailing();
  return msg;
}

std::size_t AbortNotice::encoded_size() const {
  return 4 + varint_size(reason.size()) + reason.size();
}

void AbortNotice::serialize_into(wire::Writer& w) const {
  w.u32(failed_gdo);
  w.string(reason);
}

common::Bytes AbortNotice::serialize() const { return serialize_exact(*this); }

Result<AbortNotice> AbortNotice::deserialize(common::BytesView data) {
  wire::Reader r(data);
  AbortNotice msg;
  auto failed = r.u32();
  if (!failed.ok()) return failed.error();
  msg.failed_gdo = failed.value();
  auto reason = r.string();
  if (!reason.ok()) return reason.error();
  msg.reason = std::move(reason).take();
  if (!r.exhausted()) return trailing();
  return msg;
}

common::Bytes envelope(MsgType type, common::BytesView body) {
  common::Bytes out;
  out.reserve(1 + body.size());
  out.push_back(static_cast<std::uint8_t>(type));
  common::append(out, body);
  return out;
}

Result<std::pair<MsgType, common::BytesView>> open_envelope(
    common::BytesView data) {
  if (data.empty()) {
    return make_error(Errc::bad_message, "empty envelope");
  }
  const std::uint8_t tag = data[0];
  if (tag < static_cast<std::uint8_t>(MsgType::study_announce) ||
      tag > static_cast<std::uint8_t>(MsgType::abort_notice)) {
    return make_error(Errc::bad_message, "unknown message type");
  }
  return std::make_pair(static_cast<MsgType>(tag), data.subspan(1));
}

}  // namespace gendpr::core
