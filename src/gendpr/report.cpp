#include "gendpr/report.hpp"

#include <cstdio>

namespace gendpr::core {

using obs::JsonValue;

obs::JsonValue make_run_report(const StudyResult& study,
                               const ReportContext& context) {
  JsonValue report = JsonValue::object();
  report.set("schema", kRunReportSchema);
  report.set("transport", context.transport);

  JsonValue study_section = JsonValue::object();
  study_section.set("study_id", context.study_id);
  study_section.set("leader_gdo", study.leader_gdo);
  study_section.set("num_gdos", study.num_gdos);
  study_section.set("num_combinations",
                    static_cast<std::uint64_t>(study.num_combinations));
  study_section.set("live_combinations",
                    static_cast<std::uint64_t>(study.live_combinations));
  study_section.set(
      "combination_members_total",
      static_cast<std::uint64_t>(study.combination_members_total));
  JsonValue selection = JsonValue::object();
  selection.set("l_prime",
                static_cast<std::uint64_t>(study.outcome.l_prime.size()));
  selection.set("l_double_prime", static_cast<std::uint64_t>(
                                      study.outcome.l_double_prime.size()));
  selection.set("l_safe",
                static_cast<std::uint64_t>(study.outcome.l_safe.size()));
  selection.set("final_power", study.outcome.final_power);
  study_section.set("selection", std::move(selection));
  report.set("study", std::move(study_section));

  JsonValue phases = JsonValue::object();
  phases.set("aggregation_ms", study.timings.aggregation_ms);
  phases.set("indexing_ms", study.timings.indexing_ms);
  phases.set("ld_ms", study.timings.ld_ms);
  phases.set("lr_ms", study.timings.lr_ms);
  phases.set("total_ms", study.timings.total_ms);
  phases.set("modelled_distributed_ms", study.modelled_distributed_ms);
  report.set("phases", std::move(phases));

  JsonValue network = JsonValue::object();
  network.set("total_bytes", study.network_bytes_total);
  network.set("leader_bytes_received", study.leader_bytes_received);
  network.set("phase2_body_bytes", study.phase2_body_bytes);
  network.set("ld_pairs_fetched",
              static_cast<std::uint64_t>(study.ld_pairs_fetched));
  JsonValue links = JsonValue::array();
  for (const auto& link : study.network_links) {
    JsonValue entry = JsonValue::object();
    entry.set("from", link.from);
    entry.set("to", link.to);
    entry.set("bytes", link.bytes);
    entry.set("messages", link.messages);
    links.push_back(std::move(entry));
  }
  network.set("links", std::move(links));
  report.set("network", std::move(network));

  JsonValue epc = JsonValue::object();
  epc.set("limit_bytes", study.epc_limit_bytes);
  epc.set("peak_leader_bytes", study.epc_peak_leader);
  epc.set("peak_members_max_bytes", study.epc_peak_members_max);
  JsonValue per_gdo = JsonValue::array();
  for (std::size_t g = 0; g < study.epc_peak_per_gdo.size(); ++g) {
    JsonValue entry = JsonValue::object();
    entry.set("gdo", static_cast<std::uint64_t>(g));
    entry.set("peak_bytes", study.epc_peak_per_gdo[g]);
    per_gdo.push_back(std::move(entry));
  }
  epc.set("per_gdo", std::move(per_gdo));
  report.set("epc", std::move(epc));

  JsonValue crypto = JsonValue::object();
  crypto.set("backend", study.crypto_backend);
  crypto.set("records_sealed", study.crypto_records_sealed);
  crypto.set("bytes_sealed", study.crypto_bytes_sealed);
  report.set("crypto", std::move(crypto));

  JsonValue kernels = JsonValue::object();
  kernels.set("backend", study.kernel_backend);
  report.set("kernels", std::move(kernels));

  JsonValue tiles = JsonValue::object();
  tiles.set("width", study.snp_tile_width);
  tiles.set("count", study.maf_tiles);
  tiles.set("lr_count", study.lr_tiles);
  report.set("tiles", std::move(tiles));

  JsonValue pipeline = JsonValue::object();
  pipeline.set("maf_tiles_assessed_inline",
               static_cast<std::uint64_t>(study.maf_tiles_assessed_inline));
  pipeline.set("leader_inline_assess_ms", study.leader_inline_assess_ms);
  pipeline.set("leader_lr_derive_ms", study.leader_lr_derive_ms);
  report.set("pipeline", std::move(pipeline));

  JsonValue pruning = JsonValue::object();
  pruning.set("enabled", study.pruning.enabled);
  auto mask_array = [](const std::vector<std::uint32_t>& sizes) {
    JsonValue arr = JsonValue::array();
    for (std::uint32_t size : sizes) arr.push_back(size);
    return arr;
  };
  pruning.set("maf_mask_sizes", mask_array(study.pruning.maf_mask_sizes));
  pruning.set("ld_mask_sizes", mask_array(study.pruning.ld_mask_sizes));
  pruning.set("lr_mask_sizes", mask_array(study.pruning.lr_mask_sizes));
  pruning.set("maf_reassessments", study.pruning.maf_reassessments);
  pruning.set("ld_reassessments", study.pruning.ld_reassessments);
  pruning.set("ld_walks_skipped", study.pruning.ld_walks_skipped);
  pruning.set("lr_selections_skipped", study.pruning.lr_selections_skipped);
  report.set("pruning", std::move(pruning));

  JsonValue events = JsonValue::object();
  JsonValue dead = JsonValue::array();
  for (std::uint32_t gdo : study.dead_gdos) dead.push_back(gdo);
  events.set("dead_gdos", std::move(dead));
  events.set("degraded", !study.dead_gdos.empty());
  report.set("events", std::move(events));

  if (context.obs != nullptr) {
    report.set("metrics", context.obs->metrics.to_json());
    report.set("trace", context.obs->trace.to_json());
  }
  return report;
}

common::Status write_run_report(const std::string& path,
                                const obs::JsonValue& report) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    return common::make_error(common::Errc::io_error,
                              "cannot open report file " + path);
  }
  const std::string text = report.dump(2);
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), out);
  const bool flushed = std::fclose(out) == 0;
  if (written != text.size() || !flushed) {
    return common::make_error(common::Errc::io_error,
                              "short write to report file " + path);
  }
  return common::Status::success();
}

void export_traffic(const net::TrafficMeter& meter,
                    obs::MetricsRegistry& metrics) {
  for (const auto& link : meter.snapshot()) {
    metrics.add_counter("net.link." + std::to_string(link.from) + "to" +
                            std::to_string(link.to) + ".bytes",
                        link.bytes);
  }
  metrics.add_counter("net.total_bytes", meter.total_bytes());
  metrics.add_counter("net.total_messages", meter.total_messages());
}

}  // namespace gendpr::core
