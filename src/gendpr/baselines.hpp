// Comparator pipelines from the paper's evaluation (§7).
//
// * Centralized baseline: SecureGenome's three verifications inside a single
//   enclave that pools every genome (the architecture GenDPR replaces). Used
//   for the running-time comparison of Figs. 5-6 and the correctness ground
//   truth of Table 4 - GenDPR must select exactly the same SNP sets.
// * Naive distributed baseline: each GDO runs LD and LR-test on its local
//   dataset alone and the leader intersects the local survivor lists. Table 4
//   (bold rows) shows this misselects; it exists to demonstrate why GenDPR's
//   frequency-sharing adaptations are necessary.
#pragma once

#include <cstdint>
#include <vector>

#include "gendpr/config.hpp"
#include "gendpr/node.hpp"
#include "genome/cohort.hpp"

namespace gendpr::core {

struct BaselineResult {
  SelectionOutcome outcome;
  PhaseTimings timings;
};

/// SecureGenome in one central TEE: pools all case genomes plus the
/// reference panel and runs MAF -> LD -> LR-test.
BaselineResult run_centralized(const genome::Cohort& cohort,
                               const StudyConfig& config);

/// Naive distributed protocol: global MAF (count aggregation is sound), but
/// LD pruning and LR-test run per GDO on local data only; the coordinator
/// intersects the per-GDO survivor lists after each of those phases.
BaselineResult run_naive_distributed(const genome::Cohort& cohort,
                                     const StudyConfig& config,
                                     std::uint32_t num_gdos);

}  // namespace gendpr::core
