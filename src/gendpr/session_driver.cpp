#include "gendpr/session_driver.hpp"

#include <utility>
#include <vector>

namespace gendpr::core {

using Clock = ProtocolSession::Clock;

EpollSessionDriver::EpollSessionDriver(net::EventLoop& loop, net::Hub& hub,
                                       ProtocolSession& session)
    : loop_(&loop), hub_(&hub), session_(&session) {
  hub_->set_frame_handler([this](net::NodeId from, common::BytesView payload) {
    if (from == net::kNoNode) return;
    // Zero-copy delivery: the view aliases the hub's receive buffer; the
    // session either consumes it before returning or copies it into its
    // input queue.
    session_->on_frame(from - 1, payload, Clock::now());
    pump();
  });
  hub_->set_peer_lost_handler([this](net::NodeId peer) {
    if (peer == net::kNoNode) return;
    // Hubs release a dying connection's pause before reporting the loss,
    // so this erase is normally a no-op; kept as a belt-and-braces guard
    // against a stall on a peer that no longer exists.
    paused_peers_.erase(peer);
    if (stall_pending_ && paused_peers_.empty()) {
      stall_pending_ = false;
      session_->on_sends_complete(std::move(stalled_failures_), Clock::now());
      stalled_failures_.clear();
    }
    session_->on_peer_lost(peer - 1, Clock::now());
    pump();
  });
  hub_->set_backpressure_handler([this](net::NodeId peer, bool paused) {
    if (paused) {
      paused_peers_.insert(peer);
      return;
    }
    paused_peers_.erase(peer);
    // Last paused connection drained: deliver the withheld flush
    // acknowledgement so the session resumes from its send point.
    if (stall_pending_ && paused_peers_.empty()) {
      stall_pending_ = false;
      session_->on_sends_complete(std::move(stalled_failures_), Clock::now());
      stalled_failures_.clear();
      pump();
    }
  });
}

EpollSessionDriver::~EpollSessionDriver() {
  if (deadline_timer_.has_value()) loop_->cancel_timer(*deadline_timer_);
  hub_->set_frame_handler(nullptr);
  hub_->set_peer_lost_handler(nullptr);
  hub_->set_backpressure_handler(nullptr);
}

void EpollSessionDriver::start() {
  session_->start(Clock::now());
  pump();
}

void EpollSessionDriver::close() {
  // A session stalled at its flush point is suspended waiting for the send
  // acknowledgement, not for transport events — release it first so the
  // closed notification lands on a session that can observe it.
  if (stall_pending_) {
    stall_pending_ = false;
    paused_peers_.clear();
    session_->on_sends_complete(std::move(stalled_failures_), Clock::now());
    stalled_failures_.clear();
  }
  session_->on_transport_closed(Clock::now());
  pump();
}

void EpollSessionDriver::pump() {
  // Reentrancy guard: hub_->send inside the loop below can synchronously
  // tear a connection down and fire the peer-lost handler, which calls
  // pump() again. The inner call must not acknowledge the flush the outer
  // one is still collecting failures for — the loss is already recorded in
  // the session, so the outer loop picks it up.
  if (pumping_) return;
  pumping_ = true;
  bool running = true;
  while (running) {
    switch (session_->wants()) {
      case SessionWants::send: {
        std::vector<SendFailure> failures;
        for (OutFrame& frame : session_->take_output()) {
          const common::Status sent = hub_->send_frame(
              node_id_of(frame.to_gdo), std::move(frame.payload));
          if (!sent.ok()) {
            failures.push_back(SendFailure{frame.to_gdo, sent.error()});
          }
        }
        if (!paused_peers_.empty()) {
          // Some connection sits above its watermark: withhold the
          // acknowledgement, leaving the session suspended at this flush.
          // The backpressure resume delivers it once the queues drain, so
          // a slow peer bounds this session's queue growth to one batch
          // past the high watermark — and stalls nobody else.
          stall_pending_ = true;
          stalled_failures_ = std::move(failures);
          stalled_flushes_ += 1;
          running = false;
          break;
        }
        session_->on_sends_complete(std::move(failures), Clock::now());
        break;
      }
      case SessionWants::recv:
        rearm_deadline();
        running = false;
        break;
      case SessionWants::done:
      case SessionWants::failed:
        if (deadline_timer_.has_value()) {
          loop_->cancel_timer(*deadline_timer_);
          deadline_timer_.reset();
        }
        if (!notified_ && on_finished_) {
          notified_ = true;
          on_finished_();
        }
        running = false;
        break;
      case SessionWants::idle:
        running = false;
        break;
    }
  }
  pumping_ = false;
}

void EpollSessionDriver::rearm_deadline() {
  if (deadline_timer_.has_value()) {
    loop_->cancel_timer(*deadline_timer_);
    deadline_timer_.reset();
  }
  const auto deadline = session_->next_deadline();
  if (!deadline.has_value()) return;
  deadline_timer_ = loop_->add_timer(*deadline, [this] {
    deadline_timer_.reset();
    session_->on_tick(Clock::now());
    pump();
  });
}

}  // namespace gendpr::core
