// Epoll front-end for the sans-IO protocol sessions.
//
// An EpollSessionDriver binds one ProtocolSession to one EpollHub on a
// shared EventLoop: hub frames become session on_frame events, hub losses
// become on_peer_lost, the session's recv deadline is mirrored into a loop
// timer that fires on_tick, and every wants()==send flush is pushed into
// the hub's write buffers. Any number of drivers (a whole federation) can
// share one loop thread — the single-threaded counterpart of the
// thread-per-node hosts in node.hpp, running the exact same sessions.
#pragma once

#include <functional>
#include <optional>

#include "gendpr/session.hpp"
#include "net/epoll_hub.hpp"
#include "net/event_loop.hpp"

namespace gendpr::core {

class EpollSessionDriver {
 public:
  /// Binds `session` to `hub` on `loop`; all three must outlive the driver.
  /// The hub's frame/peer-lost handlers are claimed by this driver.
  EpollSessionDriver(net::EventLoop& loop, net::EpollHub& hub,
                     ProtocolSession& session);
  ~EpollSessionDriver();

  EpollSessionDriver(const EpollSessionDriver&) = delete;
  EpollSessionDriver& operator=(const EpollSessionDriver&) = delete;

  /// Invoked (once) on the loop thread when the session reaches done or
  /// failed. Set before start().
  void set_on_finished(std::function<void()> on_finished) {
    on_finished_ = std::move(on_finished);
  }

  /// Starts the session and pumps it to its first suspension.
  void start();

  /// Forces the session's transport closed (e.g. loop shutdown): the
  /// current and all later recv waits resume with a closed event.
  void close();

  bool finished() const noexcept {
    return session_->wants() == SessionWants::done ||
           session_->wants() == SessionWants::failed;
  }

 private:
  void pump();
  void rearm_deadline();

  net::EventLoop* loop_;
  net::EpollHub* hub_;
  ProtocolSession* session_;
  std::optional<net::EventLoop::TimerId> deadline_timer_;
  std::function<void()> on_finished_;
  bool notified_ = false;
  bool pumping_ = false;
};

}  // namespace gendpr::core
