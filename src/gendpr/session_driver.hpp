// Event-loop front-end for the sans-IO protocol sessions.
//
// An EpollSessionDriver binds one ProtocolSession to one net::Hub (epoll or
// io_uring backed) on a shared EventLoop: hub frames become session on_frame
// events, hub losses become on_peer_lost, the session's recv deadline is
// mirrored into a loop timer that fires on_tick, and every wants()==send
// flush is pushed into the hub's write buffers.
//
// Write-side backpressure: when the hub reports a connection above its high
// watermark, the driver withholds the on_sends_complete acknowledgement —
// the session stays suspended at its flush point and produces nothing more
// until the hub drains below the low watermark. Only this session stalls;
// every other session on the loop keeps running, so a slow peer can never
// head-of-line-block the federation. Any number of drivers (a whole
// federation) can share one loop thread — the single-threaded counterpart
// of the thread-per-node hosts in node.hpp, running the exact same
// sessions.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <set>
#include <vector>

#include "gendpr/session.hpp"
#include "net/event_loop.hpp"
#include "net/hub.hpp"

namespace gendpr::core {

class EpollSessionDriver {
 public:
  /// Binds `session` to `hub` on `loop`; all three must outlive the driver.
  /// The hub's frame/peer-lost/backpressure handlers are claimed by this
  /// driver.
  EpollSessionDriver(net::EventLoop& loop, net::Hub& hub,
                     ProtocolSession& session);
  ~EpollSessionDriver();

  EpollSessionDriver(const EpollSessionDriver&) = delete;
  EpollSessionDriver& operator=(const EpollSessionDriver&) = delete;

  /// Invoked (once) on the loop thread when the session reaches done or
  /// failed. Set before start().
  void set_on_finished(std::function<void()> on_finished) {
    on_finished_ = std::move(on_finished);
  }

  /// Starts the session and pumps it to its first suspension.
  void start();

  /// Forces the session's transport closed (e.g. loop shutdown): the
  /// current and all later recv waits resume with a closed event.
  void close();

  bool finished() const noexcept {
    return session_->wants() == SessionWants::done ||
           session_->wants() == SessionWants::failed;
  }

  /// Number of send flushes whose acknowledgement was withheld because a
  /// peer connection sat above its watermark (backpressure stalls).
  std::uint64_t stalled_flushes() const noexcept { return stalled_flushes_; }

 private:
  void pump();
  void rearm_deadline();

  net::EventLoop* loop_;
  net::Hub* hub_;
  ProtocolSession* session_;
  std::optional<net::EventLoop::TimerId> deadline_timer_;
  std::function<void()> on_finished_;
  std::set<net::NodeId> paused_peers_;
  /// Failures of the flush whose acknowledgement is deferred until every
  /// paused peer resumes (meaningful only while stall_pending_).
  std::vector<SendFailure> stalled_failures_;
  bool stall_pending_ = false;
  std::uint64_t stalled_flushes_ = 0;
  bool notified_ = false;
  bool pumping_ = false;
};

}  // namespace gendpr::core
