// Protocol messages exchanged between GenDPR enclaves.
//
// Every message travels as plaintext only *inside* enclaves: hosts see the
// serialized form already sealed into a SecureChannel record. The envelope
// is one type byte followed by the message body; deserialization is fully
// bounds-checked (wire::Reader) and rejects trailing garbage, so malformed
// or truncated inputs from a compromised host surface as bad_message.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "gendpr/config.hpp"
#include "stats/ld.hpp"
#include "stats/lr_test.hpp"
#include "wire/serialize.hpp"

namespace gendpr::core {

enum class MsgType : std::uint8_t {
  study_announce = 1,
  summary_stats = 2,
  phase1_result = 3,
  moments_request = 4,
  moments_response = 5,
  phase2_result = 6,
  lr_matrices = 7,
  phase3_result = 8,
  abort_notice = 9,
};

/// Leader -> members: study parameters and the combination table for the
/// configured collusion policy. combinations[i] lists the GDO indices whose
/// data forms honest-subset i; members compute per-combination artifacts for
/// the combinations containing them.
struct StudyAnnounce {
  std::uint64_t study_id = 0;
  std::uint32_t num_snps = 0;
  StudyConfig config;
  std::vector<std::vector<std::uint32_t>> combinations;

  std::size_t encoded_size() const;
  void serialize_into(wire::Writer& w) const;
  common::Bytes serialize() const;
  static common::Result<StudyAnnounce> deserialize(common::BytesView data);
};

/// Member -> leader: local allele-count vector over one SNP tile and the
/// local case population size (§5.2's caseLocalCounts / N^case_g). With
/// tiling disabled the single tile covers all of L_des (`tile_index` 0);
/// with a positive `snp_tile_width` a member streams one SummaryStats per
/// tile, each body bounded by the tile width, and the leader assesses tiles
/// as soon as every live member delivered them.
struct SummaryStats {
  std::vector<std::uint32_t> case_counts;
  std::uint32_t n_case = 0;
  /// Which tile of the announce-derived TilePlan `case_counts` covers.
  std::uint32_t tile_index = 0;

  std::size_t encoded_size() const;
  void serialize_into(wire::Writer& w) const;
  common::Bytes serialize() const;
  static common::Result<SummaryStats> deserialize(common::BytesView data);
};

/// Leader -> members: SNPs retained by the (intersected) MAF analysis.
struct Phase1Result {
  std::vector<std::uint32_t> retained;  // L'

  std::size_t encoded_size() const;
  void serialize_into(wire::Writer& w) const;
  common::Bytes serialize() const;
  static common::Result<Phase1Result> deserialize(common::BytesView data);
};

/// Leader -> members: request for the correlation moments of one SNP pair
/// (Phase 2 inner loop). Pairs are requested once and cached per GDO at the
/// leader; combination walks aggregate cached per-GDO moments.
struct MomentsRequest {
  std::uint32_t request_id = 0;
  std::uint32_t snp_a = 0;
  std::uint32_t snp_b = 0;

  std::size_t encoded_size() const;
  void serialize_into(wire::Writer& w) const;
  common::Bytes serialize() const;
  static common::Result<MomentsRequest> deserialize(common::BytesView data);
};

/// Member -> leader: the five additive moments plus local population size.
struct MomentsResponse {
  std::uint32_t request_id = 0;
  stats::LdMoments moments;

  std::size_t encoded_size() const;
  void serialize_into(wire::Writer& w) const;
  common::Bytes serialize() const;
  static common::Result<MomentsResponse> deserialize(common::BytesView data);
};

/// Leader -> members: SNPs retained after LD pruning plus the inputs needed
/// to build correct LR matrices (paper Fig. 4 step 1). Instead of one
/// leader-derived case-frequency vector per combination (O(C·m) doubles),
/// the leader ships each GDO's allele counts over L'' once (O(G·m)); every
/// member derives any combination's frequency vector locally via
/// `combination_case_freq`. Trust-equivalent: counts and frequencies travel
/// only between mutually attested enclaves on encrypted channels, and the
/// per-GDO counts already crossed the wire in phase 1. Strictly smaller
/// whenever C(G, G-f) > G, i.e. every f >= 2 setting.
struct Phase2Result {
  std::vector<std::uint32_t> retained;  // L''
  std::vector<double> reference_freq;   // over L''
  /// Per-GDO case allele counts over L'', indexed by GDO. Dead GDOs keep an
  /// empty slot so indices stay stable on the wire.
  std::vector<std::vector<std::uint32_t>> case_counts_per_gdo;
  /// Per-GDO case population sizes (0 for dead GDOs).
  std::vector<std::uint32_t> n_case_per_gdo;
  /// GDOs the leader declared unresponsive. Combinations containing any of
  /// them are skipped by members (§5.6 degraded mode: surviving
  /// combinations still complete).
  std::vector<std::uint32_t> dead_gdos;
  /// Tile position within the leader's phase-3 TilePlan over L''. The
  /// monolithic protocol is the `tile_index` 0 / `num_tiles` 1 special
  /// case; with tiling, `retained`, `reference_freq` and the per-GDO count
  /// vectors hold only this tile's columns (global SNP ids stay global) and
  /// members reply with one LrMatrices per tile. Each tile message is
  /// self-contained: a member needs no cross-tile state to answer it.
  std::uint32_t tile_index = 0;
  std::uint32_t num_tiles = 1;

  /// Case-frequency vector of the combination whose honest subset is
  /// `members`: exact u64 count and population sums over the members
  /// (in the given order) followed by one divide per SNP. Integer sums are
  /// order-independent and the divide is a single rounding, so the leader
  /// and every member derive bit-identical frequencies — and hence
  /// bit-identical LR weights — from the same counts.
  std::vector<double> combination_case_freq(
      const std::vector<std::uint32_t>& members) const;

  std::size_t encoded_size() const;
  void serialize_into(wire::Writer& w) const;
  common::Bytes serialize() const;
  static common::Result<Phase2Result> deserialize(common::BytesView data);
};

/// Member -> leader: local LR matrices, one per combination that includes
/// this GDO, each built with that combination's frequency vector. Under
/// tiling, each matrix covers only the columns of `tile_index`'s slice of
/// L'' (the reply mirrors the Phase2Result tile it answers); the leader
/// reassembles full-width matrices column-slice by column-slice before the
/// global safe-subset selection, which is exact because every matrix cell
/// depends on its own column only.
struct LrMatrices {
  struct Entry {
    std::uint32_t combination_id = 0;
    stats::LrMatrix matrix;
  };
  std::vector<Entry> entries;
  std::uint32_t tile_index = 0;

  std::size_t encoded_size() const;
  void serialize_into(wire::Writer& w) const;
  common::Bytes serialize() const;
  static common::Result<LrMatrices> deserialize(common::BytesView data);
};

/// Leader -> members: the final safe SNP set (intersection over
/// combinations) and the residual adversary power observed.
struct Phase3Result {
  std::vector<std::uint32_t> safe;  // L_safe
  double final_power = 0.0;

  std::size_t encoded_size() const;
  void serialize_into(wire::Writer& w) const;
  common::Bytes serialize() const;
  static common::Result<Phase3Result> deserialize(common::BytesView data);
};

/// Leader -> members: the study cannot complete; stop waiting for further
/// phase requests. `failed_gdo` names the unresponsive GDO that triggered
/// the abort (kNoFailedGdo when the cause is not a specific peer).
struct AbortNotice {
  static constexpr std::uint32_t kNoFailedGdo = 0xffffffffu;

  std::uint32_t failed_gdo = kNoFailedGdo;
  std::string reason;

  std::size_t encoded_size() const;
  void serialize_into(wire::Writer& w) const;
  common::Bytes serialize() const;
  static common::Result<AbortNotice> deserialize(common::BytesView data);
};

/// Every message exposes the same three-method surface: encoded_size()
/// returns the exact byte count serialize_into() will append, so the send
/// path can reserve once (or serialize straight into a pooled wire buffer)
/// and never regrow; serialize() is the owning convenience over the pair.

/// Type-erased reference to any protocol message (anything with
/// encoded_size()/serialize_into()). Lets the session send paths accept
/// every message type through one non-template signature while keeping the
/// message structs plain aggregates with no common base.
class MessageRef {
 public:
  template <typename M>
  // NOLINTNEXTLINE(google-explicit-constructor)
  MessageRef(const M& msg) noexcept
      : obj_(&msg),
        size_([](const void* p) {
          return static_cast<const M*>(p)->encoded_size();
        }),
        write_([](const void* p, wire::Writer& w) {
          static_cast<const M*>(p)->serialize_into(w);
        }) {}

  std::size_t encoded_size() const { return size_(obj_); }
  void serialize_into(wire::Writer& w) const { write_(obj_, w); }

 private:
  const void* obj_;
  std::size_t (*size_)(const void*);
  void (*write_)(const void*, wire::Writer&);
};

/// Frames a message with its type tag.
common::Bytes envelope(MsgType type, common::BytesView body);

/// Splits an envelope into its type and body view. The body aliases `data`;
/// it stays valid exactly as long as the caller's buffer does.
common::Result<std::pair<MsgType, common::BytesView>> open_envelope(
    common::BytesView data);

}  // namespace gendpr::core
