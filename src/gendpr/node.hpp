// Untrusted host processes of the federation.
//
// A host owns a protocol session (session.hpp) and pumps it against a
// blocking transport: it owns the thread, the mailbox and the node-id
// translation, while every protocol decision lives in the sans-IO session.
// `MemberNode` services the leader's requests on its own thread;
// `LeaderNode` drives the three phases and produces the study result with
// the per-phase timing breakdown of the paper's Figures 5-6.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <set>
#include <thread>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "gendpr/session.hpp"
#include "net/network.hpp"
#include "obs/observability.hpp"
#include "tee/enclave.hpp"

namespace gendpr::core {

/// Non-leader GDO host: handshakes with the leader, then answers phase
/// requests until the study completes (or its mailbox closes).
class MemberNode {
 public:
  MemberNode(net::Transport& network, tee::Platform& platform,
             std::uint32_t gdo_index, std::uint32_t leader_gdo,
             genome::GenotypeMatrix cases);
  ~MemberNode();

  MemberNode(const MemberNode&) = delete;
  MemberNode& operator=(const MemberNode&) = delete;

  /// Bounds every protocol wait (kNoDeadline = block forever). A deadline
  /// expiry surfaces as Errc::timeout naming the leader. Call before start().
  void set_receive_timeout(std::chrono::milliseconds timeout) {
    session_.set_receive_timeout(timeout);
  }

  /// Attaches the run's observability bundle (nullptr = unobserved). The
  /// service loop counts requests served per GDO and records its compute
  /// time. Call before start(); the registry is thread-safe.
  void set_observability(obs::Observability* obs) noexcept {
    session_.set_observability(obs);
  }

  /// Thread pool the phase-2 handler fans its per-combination LR
  /// derivations out on (nullptr = serial). The pool may be shared across
  /// members and with the leader: parallel_for is safe to call concurrently
  /// from distinct caller threads. Call before start().
  void set_pool(common::ThreadPool* pool) noexcept { session_.set_pool(pool); }

  /// Starts the service thread.
  void start();
  /// Waits for the service thread to finish (after phase 3 or close).
  void join();

  const GdoEnclave& enclave() const noexcept { return session_.enclave(); }
  /// Error encountered by the service loop, if any.
  const common::Status& status() const noexcept { return status_; }

  /// CPU time this member spent computing protocol artifacts (summary
  /// stats, LD moments, LR matrices). On a real multi-host deployment this
  /// work overlaps across members; the single-host runner uses it to model
  /// the distributed wall time (StudyResult::modelled_distributed_ms).
  double compute_ms() const noexcept { return session_.compute_ms(); }

 private:
  void run();

  net::Transport* network_;
  std::shared_ptr<net::Mailbox> mailbox_;
  std::uint32_t gdo_index_;
  MemberSession session_;
  std::thread thread_;
  common::Status status_;
};

/// Leader GDO host: establishes channels to all members, then drives the
/// three-phase protocol and collects the result.
class LeaderNode {
 public:
  LeaderNode(net::Transport& network, tee::Platform& platform,
             std::uint32_t gdo_index, std::uint32_t num_gdos,
             genome::GenotypeMatrix cases, genome::GenotypeMatrix reference,
             StudyAnnounce announce);
  ~LeaderNode();

  LeaderNode(const LeaderNode&) = delete;
  LeaderNode& operator=(const LeaderNode&) = delete;

  /// Bounds every protocol wait (kNoDeadline = block forever). With a
  /// deadline set, an unresponsive member is declared dead when it expires:
  /// combinations containing it are skipped, and the study aborts with
  /// Errc::timeout naming the dead peers only when no combination survives.
  void set_receive_timeout(std::chrono::milliseconds timeout) {
    session_.set_receive_timeout(timeout);
  }

  /// Attaches the run's observability bundle (nullptr = unobserved): the
  /// protocol steps open spans under `study_span`, and the coordinator opens
  /// per-combination spans inside each analysis phase. Call before
  /// run_study().
  void set_observability(obs::Observability* obs,
                         obs::SpanId study_span = obs::kNoSpan) noexcept {
    session_.set_observability(obs, study_span);
  }

  /// Runs the full study. `pool` parallelizes per-combination evaluation in
  /// the LR phase (nullptr = serial). On failure after channel setup, a
  /// best-effort abort notice is sent to the surviving members so they stop
  /// waiting instead of running into their own deadlines.
  common::Result<StudyResult> run_study(common::ThreadPool* pool);

  const GdoEnclave& enclave() const noexcept { return session_.enclave(); }

 private:
  /// Transport peer-lost hook; runs on a transport thread.
  void note_peer_lost(net::NodeId node);

  net::Transport* network_;
  std::shared_ptr<net::Mailbox> mailbox_;
  std::uint32_t gdo_index_;
  std::uint32_t num_gdos_;
  LeaderSession session_;
  /// Peers reported lost by the transport, pending the pump's drain. The
  /// hook runs on transport threads; the session is single-threaded.
  std::mutex hook_mutex_;
  std::set<std::uint32_t> hook_dead_;
};

}  // namespace gendpr::core
