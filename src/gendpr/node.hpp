// Untrusted host processes of the federation.
//
// A host owns a platform's enclave object but sees only sealed blobs and
// SecureChannel ciphertext; every protocol decision happens inside
// gendpr/trusted.hpp. `MemberNode` services the leader's requests on its own
// thread; `LeaderNode` drives the three phases and produces the study result
// with the per-phase timing breakdown of the paper's Figures 5-6.
#pragma once

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "gendpr/trusted.hpp"
#include "net/network.hpp"
#include "tee/enclave.hpp"

namespace gendpr::core {

/// Network node id of GDO `gdo_index` (0 is reserved).
inline net::NodeId node_id_of(std::uint32_t gdo_index) {
  return gdo_index + 1;
}

/// Per-phase CPU/wall time breakdown, matching the stacked categories of the
/// paper's Figures 5-6.
struct PhaseTimings {
  double aggregation_ms = 0;  // "Data Aggregation": transfer + decrypt + merge
  double indexing_ms = 0;     // "Indexing/Sorting/AlleleFreq.": MAF phase math
  double ld_ms = 0;           // "LD analysis"
  double lr_ms = 0;           // "LR-test analysis"
  double total_ms = 0;        // end-to-end including setup
};

struct StudyResult {
  SelectionOutcome outcome;
  PhaseTimings timings;
  /// Wall time modelled for a real multi-host deployment: members compute
  /// concurrently there, so serialized member compute collapses to the
  /// slowest member: total - sum(member compute) + max(member compute).
  /// On a single-core simulation host total_ms serializes everything.
  double modelled_distributed_ms = 0;
  std::uint32_t leader_gdo = 0;
  std::size_t num_combinations = 0;
  std::size_t ld_pairs_fetched = 0;
  std::uint64_t network_bytes_total = 0;
  std::uint64_t leader_bytes_received = 0;
  std::uint64_t epc_peak_leader = 0;
  std::uint64_t epc_peak_members_max = 0;
};

/// Non-leader GDO host: handshakes with the leader, then answers phase
/// requests until the study completes (or its mailbox closes).
class MemberNode {
 public:
  MemberNode(net::Transport& network, tee::Platform& platform,
             std::uint32_t gdo_index, std::uint32_t leader_gdo,
             genome::GenotypeMatrix cases);
  ~MemberNode();

  MemberNode(const MemberNode&) = delete;
  MemberNode& operator=(const MemberNode&) = delete;

  /// Starts the service thread.
  void start();
  /// Waits for the service thread to finish (after phase 3 or close).
  void join();

  const GdoEnclave& enclave() const noexcept { return enclave_; }
  /// Error encountered by the service loop, if any.
  const common::Status& status() const noexcept { return status_; }

  /// CPU time this member spent computing protocol artifacts (summary
  /// stats, LD moments, LR matrices). On a real multi-host deployment this
  /// work overlaps across members; the single-host runner uses it to model
  /// the distributed wall time (StudyResult::modelled_distributed_ms).
  double compute_ms() const noexcept { return compute_ms_; }

 private:
  void run();

  net::Transport* network_;
  std::shared_ptr<net::Mailbox> mailbox_;
  std::uint32_t gdo_index_;
  std::uint32_t leader_gdo_;
  GdoEnclave enclave_;
  std::unique_ptr<tee::SecureChannel> channel_;
  std::thread thread_;
  common::Status status_;
  double compute_ms_ = 0;
};

/// Leader GDO host: establishes channels to all members, then drives the
/// three-phase protocol and collects the result.
class LeaderNode {
 public:
  LeaderNode(net::Transport& network, tee::Platform& platform,
             std::uint32_t gdo_index, std::uint32_t num_gdos,
             genome::GenotypeMatrix cases, genome::GenotypeMatrix reference,
             StudyAnnounce announce);

  /// Runs the full study. `pool` parallelizes per-combination evaluation in
  /// the LR phase (nullptr = serial).
  common::Result<StudyResult> run_study(common::ThreadPool* pool);

  const GdoEnclave& enclave() const noexcept { return enclave_; }

 private:
  common::Status establish_channels();
  common::Status send_to(std::uint32_t gdo_index, MsgType type,
                         common::BytesView body);
  common::Status broadcast(MsgType type, common::BytesView body);
  /// Blocks for the next record from any member; returns (gdo_index, body).
  common::Result<std::pair<std::uint32_t, common::Bytes>> receive_record();

  net::Transport* network_;
  std::shared_ptr<net::Mailbox> mailbox_;
  std::uint32_t gdo_index_;
  std::uint32_t num_gdos_;
  GdoEnclave enclave_;
  Coordinator coordinator_;
  std::vector<std::unique_ptr<tee::SecureChannel>> channels_;  // per GDO
  common::Status provision_status_;
  double fetch_wait_ms_ = 0;  // time spent gathering member responses
};

}  // namespace gendpr::core
