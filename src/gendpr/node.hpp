// Untrusted host processes of the federation.
//
// A host owns a platform's enclave object but sees only sealed blobs and
// SecureChannel ciphertext; every protocol decision happens inside
// gendpr/trusted.hpp. `MemberNode` services the leader's requests on its own
// thread; `LeaderNode` drives the three phases and produces the study result
// with the per-phase timing breakdown of the paper's Figures 5-6.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "gendpr/trusted.hpp"
#include "net/network.hpp"
#include "obs/observability.hpp"
#include "tee/enclave.hpp"

namespace gendpr::core {

/// Network node id of GDO `gdo_index` (0 is reserved).
inline net::NodeId node_id_of(std::uint32_t gdo_index) {
  return gdo_index + 1;
}

/// No deadline: every protocol wait blocks forever (the paper's original
/// semantics — no liveness guarantee). Configure a positive timeout to get
/// bounded waits that abort with Errc::timeout naming the silent peer.
inline constexpr std::chrono::milliseconds kNoDeadline{0};

/// Per-phase CPU/wall time breakdown, matching the stacked categories of the
/// paper's Figures 5-6.
struct PhaseTimings {
  double aggregation_ms = 0;  // "Data Aggregation": transfer + decrypt + merge
  double indexing_ms = 0;     // "Indexing/Sorting/AlleleFreq.": MAF phase math
  double ld_ms = 0;           // "LD analysis"
  double lr_ms = 0;           // "LR-test analysis"
  double total_ms = 0;        // end-to-end including setup
};

struct StudyResult {
  SelectionOutcome outcome;
  PhaseTimings timings;
  /// GDOs declared unresponsive during the run. Empty for a clean study; a
  /// non-empty list means the selection came from the surviving
  /// combinations only (collusion policies with redundancy keep going).
  std::vector<std::uint32_t> dead_gdos;
  /// Wall time modelled for a real multi-host deployment: members compute
  /// concurrently there, so serialized member compute collapses to the
  /// slowest member: total - sum(member compute) + max(member compute).
  /// On a single-core simulation host total_ms serializes everything.
  double modelled_distributed_ms = 0;
  std::uint32_t leader_gdo = 0;
  std::uint32_t num_gdos = 0;
  std::size_t num_combinations = 0;
  /// Combinations with no dead member (== num_combinations on clean runs).
  std::size_t live_combinations = 0;
  /// Sum of |members(c)| over live combinations: the expected number of
  /// per-member LR basis derivations (`lr.combination_matvecs`).
  std::size_t combination_members_total = 0;
  /// Serialized size of the phase-2 result each member receives. With
  /// per-GDO counts this is O(G·m) instead of the old O(C·m) frequency
  /// vectors.
  std::uint64_t phase2_body_bytes = 0;
  std::size_t ld_pairs_fetched = 0;
  std::uint64_t network_bytes_total = 0;
  std::uint64_t leader_bytes_received = 0;
  std::uint64_t epc_peak_leader = 0;
  std::uint64_t epc_peak_members_max = 0;
  /// Per-link traffic snapshot from the leader's transport meter, taken
  /// before teardown. The in-process fabric's meter sees every link; a TCP
  /// hub's meter sees both directions of every link the leader terminates,
  /// which in the star topology is likewise all protocol traffic.
  std::vector<net::TrafficMeter::Link> network_links;
  /// EPC peak per GDO, indexed by GDO. The leader fills its own entry; the
  /// single-host runner fills every entry before tearing platforms down.
  /// Entries for GDOs whose platform was unobservable stay 0.
  std::vector<std::uint64_t> epc_peak_per_gdo;
  /// The per-platform EPC limit the run was configured with (0 = unknown).
  std::uint64_t epc_limit_bytes = 0;
  /// AEAD backend the run dispatched to ("portable" / "native") and the
  /// run's sealing volume (records = AEAD invocations across channels and
  /// sealed blobs, bytes = plaintext protected).
  std::string crypto_backend;
  std::uint64_t crypto_records_sealed = 0;
  std::uint64_t crypto_bytes_sealed = 0;
  /// SIMD kernel backend the bit-plane hot loops dispatched to
  /// ("portable" / "avx2" / "avx512").
  std::string kernel_backend;
  /// Tiling shape of the pipelined phase engine: the configured width
  /// (0 = monolithic) and the resulting phase-1 / phase-3 tile counts.
  std::uint32_t snp_tile_width = 0;
  std::uint32_t maf_tiles = 1;
  std::uint32_t lr_tiles = 1;
  /// Pipeline overlap: leader-side work done while members were still
  /// streaming — MAF tiles assessed mid-gather and the time spent on them,
  /// plus the leader's own LR tile derivations run right after the phase-2
  /// tile broadcast (overlapping the members' derivations).
  std::size_t maf_tiles_assessed_inline = 0;
  double leader_inline_assess_ms = 0;
  double leader_lr_derive_ms = 0;
  /// Intersection-aware sweep bookkeeping (zeros / empty when pruning off).
  PruningStats pruning;
};

/// Non-leader GDO host: handshakes with the leader, then answers phase
/// requests until the study completes (or its mailbox closes).
class MemberNode {
 public:
  MemberNode(net::Transport& network, tee::Platform& platform,
             std::uint32_t gdo_index, std::uint32_t leader_gdo,
             genome::GenotypeMatrix cases);
  ~MemberNode();

  MemberNode(const MemberNode&) = delete;
  MemberNode& operator=(const MemberNode&) = delete;

  /// Bounds every protocol wait (kNoDeadline = block forever). A deadline
  /// expiry surfaces as Errc::timeout naming the leader. Call before start().
  void set_receive_timeout(std::chrono::milliseconds timeout) {
    receive_timeout_ = timeout;
  }

  /// Attaches the run's observability bundle (nullptr = unobserved). The
  /// service loop counts requests served per GDO and records its compute
  /// time. Call before start(); the registry is thread-safe.
  void set_observability(obs::Observability* obs) noexcept { obs_ = obs; }

  /// Thread pool the phase-2 handler fans its per-combination LR
  /// derivations out on (nullptr = serial). The pool may be shared across
  /// members and with the leader: parallel_for is safe to call concurrently
  /// from distinct caller threads. Call before start().
  void set_pool(common::ThreadPool* pool) noexcept { pool_ = pool; }

  /// Starts the service thread.
  void start();
  /// Waits for the service thread to finish (after phase 3 or close).
  void join();

  const GdoEnclave& enclave() const noexcept { return enclave_; }
  /// Error encountered by the service loop, if any.
  const common::Status& status() const noexcept { return status_; }

  /// CPU time this member spent computing protocol artifacts (summary
  /// stats, LD moments, LR matrices). On a real multi-host deployment this
  /// work overlaps across members; the single-host runner uses it to model
  /// the distributed wall time (StudyResult::modelled_distributed_ms).
  double compute_ms() const noexcept { return compute_ms_; }

 private:
  void run();

  net::Transport* network_;
  std::shared_ptr<net::Mailbox> mailbox_;
  std::uint32_t gdo_index_;
  std::uint32_t leader_gdo_;
  GdoEnclave enclave_;
  std::unique_ptr<tee::SecureChannel> channel_;
  std::thread thread_;
  common::Status status_;
  std::chrono::milliseconds receive_timeout_{kNoDeadline};
  double compute_ms_ = 0;
  obs::Observability* obs_ = nullptr;
  common::ThreadPool* pool_ = nullptr;
};

/// Leader GDO host: establishes channels to all members, then drives the
/// three-phase protocol and collects the result.
class LeaderNode {
 public:
  LeaderNode(net::Transport& network, tee::Platform& platform,
             std::uint32_t gdo_index, std::uint32_t num_gdos,
             genome::GenotypeMatrix cases, genome::GenotypeMatrix reference,
             StudyAnnounce announce);
  ~LeaderNode();

  LeaderNode(const LeaderNode&) = delete;
  LeaderNode& operator=(const LeaderNode&) = delete;

  /// Bounds every protocol wait (kNoDeadline = block forever). With a
  /// deadline set, an unresponsive member is declared dead when it expires:
  /// combinations containing it are skipped, and the study aborts with
  /// Errc::timeout naming the dead peers only when no combination survives.
  void set_receive_timeout(std::chrono::milliseconds timeout) {
    receive_timeout_ = timeout;
  }

  /// Attaches the run's observability bundle (nullptr = unobserved): the
  /// protocol steps open spans under `study_span`, and the coordinator opens
  /// per-combination spans inside each analysis phase. Call before
  /// run_study().
  void set_observability(obs::Observability* obs,
                         obs::SpanId study_span = obs::kNoSpan) noexcept {
    obs_ = obs;
    study_span_ = study_span;
    coordinator_.set_observability(obs, study_span);
  }

  /// Runs the full study. `pool` parallelizes per-combination evaluation in
  /// the LR phase (nullptr = serial). On failure after channel setup, a
  /// best-effort abort notice is sent to the surviving members so they stop
  /// waiting instead of running into their own deadlines.
  common::Result<StudyResult> run_study(common::ThreadPool* pool);

  const GdoEnclave& enclave() const noexcept { return enclave_; }

 private:
  /// One arrival during a phase gather: either a decrypted record from a
  /// live member (`got == true`) or the news that every still-pending
  /// member has been declared dead (`got == false`, gather is over).
  struct GatherStep {
    bool got = false;
    std::uint32_t member = 0;
    common::Bytes plaintext;
  };

  common::Result<StudyResult> run_study_impl(common::ThreadPool* pool);
  common::Status establish_channels();
  common::Status send_to(std::uint32_t gdo_index, MsgType type,
                         common::BytesView body);
  common::Status broadcast(MsgType type, common::BytesView body);
  void broadcast_abort(const common::Error& error);
  /// Waits for the next record from any member in `pending`, with the
  /// configured deadline. Deadline expiry (and transport-reported peer loss)
  /// marks the silent members dead rather than failing the call; hard
  /// protocol errors (closed mailbox, bad record) are returned.
  common::Result<GatherStep> next_record(const char* phase,
                                         std::set<std::uint32_t>& pending);
  /// Members with an established channel that are not (yet) dead.
  std::set<std::uint32_t> live_members() const;
  /// Transport peer-lost hook; runs on a transport thread.
  void note_peer_lost(net::NodeId node);
  /// Folds hook-reported losses into the coordinator (protocol thread only).
  void sync_dead_peers();
  void mark_pending_dead(std::set<std::uint32_t>& pending, const char* phase);
  common::Error dead_peers_error(const char* phase) const;

  net::Transport* network_;
  std::shared_ptr<net::Mailbox> mailbox_;
  std::uint32_t gdo_index_;
  std::uint32_t num_gdos_;
  GdoEnclave enclave_;
  Coordinator coordinator_;
  std::vector<std::unique_ptr<tee::SecureChannel>> channels_;  // per GDO
  common::Status provision_status_;
  std::chrono::milliseconds receive_timeout_{kNoDeadline};
  bool channels_established_ = false;
  /// Fatal error detected inside the phase-2 fetch callback (its signature
  /// cannot return one); checked after run_ld_phase returns.
  std::optional<common::Error> fetch_error_;
  /// Peers reported lost by the transport, pending sync_dead_peers(). The
  /// hook runs on transport threads; the coordinator is not thread-safe.
  std::mutex hook_mutex_;
  std::set<std::uint32_t> hook_dead_;
  double fetch_wait_ms_ = 0;  // time spent gathering member responses
  obs::Observability* obs_ = nullptr;
  obs::SpanId study_span_ = obs::kNoSpan;
};

}  // namespace gendpr::core
