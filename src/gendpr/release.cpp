#include "gendpr/release.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "stats/association.hpp"
#include "stats/dp.hpp"

namespace gendpr::core {

namespace {

ReleaseRow exact_row(std::uint32_t snp, std::uint32_t case_count,
                     std::uint64_t n_case, std::uint32_t control_count,
                     std::uint64_t n_control) {
  ReleaseRow row;
  row.snp = snp;
  row.noise_free = true;
  row.case_count = case_count;
  row.control_count = control_count;
  row.maf = stats::minor_allele_frequency(case_count + control_count,
                                          n_case + n_control);
  const stats::SinglewiseTable table{case_count, n_case, control_count,
                                     n_control};
  row.chi2 = stats::chi2_statistic(table);
  row.p_value = stats::chi2_p_value(table);
  return row;
}

ReleaseRow noisy_row(std::uint32_t snp, double case_count, double n_case,
                     double control_count, double n_control) {
  ReleaseRow row;
  row.snp = snp;
  row.noise_free = false;
  row.case_count = case_count;
  row.control_count = control_count;
  // Statistics recomputed from the perturbed counts, clamped to the valid
  // domain (noise can push counts slightly negative).
  const double cc = std::clamp(case_count, 0.0, n_case);
  const double kc = std::clamp(control_count, 0.0, n_control);
  row.maf = (cc + kc) / (n_case + n_control);
  const stats::SinglewiseTable table{
      static_cast<std::uint64_t>(std::llround(cc)),
      static_cast<std::uint64_t>(n_case),
      static_cast<std::uint64_t>(std::llround(kc)),
      static_cast<std::uint64_t>(n_control)};
  row.chi2 = stats::chi2_statistic(table);
  row.p_value = stats::chi2_p_value(table);
  return row;
}

}  // namespace

Release build_release(const genome::GenotypeMatrix& cases,
                      const genome::GenotypeMatrix& controls,
                      const std::vector<std::uint32_t>& safe,
                      const ReleaseOptions& options) {
  Release release;
  const std::uint64_t n_case = cases.num_individuals();
  const std::uint64_t n_control = controls.num_individuals();

  const auto safe_case_counts = cases.allele_counts(safe);
  const auto safe_control_counts = controls.allele_counts(safe);
  for (std::size_t i = 0; i < safe.size(); ++i) {
    release.rows.push_back(exact_row(safe[i], safe_case_counts[i], n_case,
                                     safe_control_counts[i], n_control));
  }
  release.noise_free_count = safe.size();

  if (options.dp_epsilon.has_value()) {
    std::vector<std::uint32_t> complement;
    std::size_t cursor = 0;
    for (std::uint32_t l = 0; l < cases.num_snps(); ++l) {
      if (cursor < safe.size() && safe[cursor] == l) {
        ++cursor;
      } else {
        complement.push_back(l);
      }
    }
    common::Rng rng(options.dp_seed);
    const auto raw_case = cases.allele_counts(complement);
    const auto raw_control = controls.allele_counts(complement);
    // Each individual affects one count per SNP by at most 1; the per-count
    // budget is epsilon (case and control counts are disjoint populations).
    const auto noisy_case = stats::dp_perturb_counts(
        raw_case, *options.dp_epsilon, 1.0, rng);
    const auto noisy_control = stats::dp_perturb_counts(
        raw_control, *options.dp_epsilon, 1.0, rng);
    for (std::size_t i = 0; i < complement.size(); ++i) {
      release.rows.push_back(noisy_row(
          complement[i], noisy_case[i], static_cast<double>(n_case),
          noisy_control[i], static_cast<double>(n_control)));
    }
    release.dp_count = complement.size();
    std::sort(release.rows.begin(), release.rows.end(),
              [](const ReleaseRow& a, const ReleaseRow& b) {
                return a.snp < b.snp;
              });
  }
  return release;
}

std::string release_to_tsv(const Release& release) {
  std::ostringstream out;
  out << "snp\tmode\tcase_count\tcontrol_count\tmaf\tchi2\tp_value\n";
  for (const ReleaseRow& row : release.rows) {
    out << row.snp << '\t' << (row.noise_free ? "exact" : "dp") << '\t'
        << row.case_count << '\t' << row.control_count << '\t' << row.maf
        << '\t' << row.chi2 << '\t' << row.p_value << '\n';
  }
  return out.str();
}

}  // namespace gendpr::core
