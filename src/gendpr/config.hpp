// Study configuration: the privacy-assessment thresholds of §3.2/§7.
#pragma once

#include <cstdint>

namespace gendpr::core {

/// Thresholds controlling the three verification phases. Defaults are the
/// SecureGenome settings the paper adopts in §7: 0.05 MAF cut-off, 1e-5 LD
/// cut-off, 0.1 false-positive rate, 0.9 identification-power threshold.
struct StudyConfig {
  double maf_cutoff = 0.05;
  double ld_cutoff = 1e-5;
  double lr_false_positive_rate = 0.1;
  double lr_power_threshold = 0.9;
  /// SNP-tile width for the pipelined phase engine. 0 disables tiling (one
  /// tile spanning the whole study — the original monolithic protocol).
  /// With a positive width, phase-1 summaries and phase-3 inputs travel as
  /// per-tile messages: message bodies and transient enclave working sets
  /// stay O(tile) instead of O(num_snps), and the leader assesses tile k
  /// while members stream tile k+1. Tiling never changes results: the
  /// assembled per-phase state is independent of the tile boundaries.
  std::uint32_t snp_tile_width = 0;
  /// Intersection-aware pruning of the collusion-tolerant combination
  /// sweep. When on (the default), the coordinator orders combinations
  /// smallest-case-population first, intersects the per-combination
  /// survivor sets eagerly, and restricts per-combination work to
  /// transforms that provably cannot change the released sets: the MAF
  /// pass evaluates only SNPs still surviving the running mask, chi²
  /// ranks are computed for L' survivors only, LD walks stop once every
  /// running-intersection member's fate is decided, emptied intersections
  /// skip the remaining combinations, and LR matrices chain through
  /// per-column delta updates instead of full basis derivations. The
  /// released L'/L''/L_safe sets are bit-identical with pruning on or
  /// off; only the work (and its counters) shrinks.
  bool prune = true;

  bool operator==(const StudyConfig&) const = default;
};

/// Collusion-tolerance policy (§5.6).
struct CollusionPolicy {
  enum class Mode : std::uint8_t {
    none,       // f = 0: single combination of all G GDOs
    fixed_f,    // C(G, G-f) combinations for one f
    all_f,      // conservative: every f in {1, .., G-1}
  };
  Mode mode = Mode::none;
  unsigned f = 0;  // used when mode == fixed_f

  static CollusionPolicy none() { return {Mode::none, 0}; }
  static CollusionPolicy fixed(unsigned f) { return {Mode::fixed_f, f}; }
  static CollusionPolicy conservative() { return {Mode::all_f, 0}; }
};

}  // namespace gendpr::core
