// Study configuration: the privacy-assessment thresholds of §3.2/§7.
#pragma once

#include <cstdint>

namespace gendpr::core {

/// Thresholds controlling the three verification phases. Defaults are the
/// SecureGenome settings the paper adopts in §7: 0.05 MAF cut-off, 1e-5 LD
/// cut-off, 0.1 false-positive rate, 0.9 identification-power threshold.
struct StudyConfig {
  double maf_cutoff = 0.05;
  double ld_cutoff = 1e-5;
  double lr_false_positive_rate = 0.1;
  double lr_power_threshold = 0.9;

  bool operator==(const StudyConfig&) const = default;
};

/// Collusion-tolerance policy (§5.6).
struct CollusionPolicy {
  enum class Mode : std::uint8_t {
    none,       // f = 0: single combination of all G GDOs
    fixed_f,    // C(G, G-f) combinations for one f
    all_f,      // conservative: every f in {1, .., G-1}
  };
  Mode mode = Mode::none;
  unsigned f = 0;  // used when mode == fixed_f

  static CollusionPolicy none() { return {Mode::none, 0}; }
  static CollusionPolicy fixed(unsigned f) { return {Mode::fixed_f, f}; }
  static CollusionPolicy conservative() { return {Mode::all_f, 0}; }
};

}  // namespace gendpr::core
