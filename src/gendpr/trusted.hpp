// Trusted GenDPR modules (run inside the per-GDO enclaves).
//
// `GdoEnclave` is the member-side trusted module of Fig. 2: it holds the
// GDO's local case genotypes (which never leave it in plaintext) and answers
// the leader's phase requests with intermediate aggregates. `Coordinator` is
// the leader-side coordination module: it aggregates member inputs with its
// own local data and the public reference panel, runs the MAF / LD / LR-test
// decisions per honest-subset combination (§5.6), and intersects the
// per-combination survivor lists.
//
// All methods take and return plaintext protocol messages; the untrusted
// host (node.hpp) moves only SecureChannel ciphertext. The split mirrors
// the paper's enclave boundary: decisions happen here, transport out there.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "common/coro.hpp"
#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "gendpr/config.hpp"
#include "gendpr/messages.hpp"
#include "genome/bitplanes.hpp"
#include "genome/genotype.hpp"
#include "genome/tile_plan.hpp"
#include "obs/observability.hpp"
#include "stats/ld.hpp"
#include "stats/lr_test.hpp"
#include "tee/enclave.hpp"

namespace gendpr::core {

/// Name/version measured into every GenDPR trusted module. All federation
/// enclaves must run this exact module to pass mutual attestation.
inline constexpr const char* kTrustedModuleName = "gendpr.trusted";
inline constexpr const char* kTrustedModuleVersion = "1.0.0";

tee::Measurement trusted_module_measurement();

/// Member-side trusted module.
class GdoEnclave : public tee::Enclave {
 public:
  GdoEnclave(tee::Platform& platform, std::uint32_t gdo_index);

  std::uint32_t gdo_index() const noexcept { return gdo_index_; }

  /// Loads the GDO's local case genotypes into the enclave (models decrypting
  /// the sealed local dataset; accounted against the EPC meter). Also builds
  /// the SNP-major bit-plane transpose the statistical kernels run on; the
  /// planes are charged against the EPC meter like the dataset itself.
  common::Status provision_dataset(genome::GenotypeMatrix cases);

  const genome::GenotypeMatrix& dataset() const noexcept { return cases_; }
  const genome::BitPlanes& planes() const noexcept { return planes_; }

  /// --- protocol handlers (member role) ---
  common::Status on_study_announce(const StudyAnnounce& announce);
  SummaryStats make_summary_stats() const;
  /// Per-tile summary for the pipelined phase 1: the allele counts of SNPs
  /// [snp_begin, snp_end), read straight from the bit-plane count cache
  /// through a zero-copy tile view (never recounted).
  SummaryStats make_summary_tile(std::uint32_t snp_begin,
                                 std::uint32_t snp_end,
                                 std::uint32_t tile_index) const;
  common::Status on_phase1(const Phase1Result& result);
  common::Result<MomentsResponse> on_moments_request(
      const MomentsRequest& request) const;
  /// Builds one local LR matrix per live combination containing this GDO
  /// (paper Fig. 4 step 2). The genotype-fixed LR basis is expanded once
  /// from the bit planes (charged transiently against the EPC meter), each
  /// combination's frequency vector is derived locally from the announce's
  /// combination list and the per-GDO counts, and the matrices come out as
  /// basis-times-weights products — bit-identical to per-combination
  /// rebuilds. `pool` (optional) fans the derivations out across
  /// combinations; entry order is deterministic either way. The basis is
  /// built iff the result has at least one entry.
  ///
  /// Under tiling the leader streams `result.num_tiles` tile messages in
  /// ascending `tile_index` order; each is handled independently (basis and
  /// matrices over the tile's columns only, so the transient working set is
  /// O(tile)), and L'' accumulates across the stream. Out-of-order or
  /// repeated tiles are a protocol violation.
  common::Result<LrMatrices> on_phase2(const Phase2Result& result,
                                       common::ThreadPool* pool = nullptr);
  common::Status on_phase3(const Phase3Result& result);

  const std::vector<std::uint32_t>& retained_after_phase1() const noexcept {
    return l_prime_;
  }
  /// Whether the announced study runs the intersection-aware sweep (false
  /// before any announce). The host uses it to attribute phase-2 work to
  /// the right counters (full derivations vs delta updates).
  bool prune_enabled() const noexcept {
    return announce_.has_value() && announce_->config.prune;
  }
  const std::vector<std::uint32_t>& safe_snps() const noexcept {
    return l_safe_;
  }
  bool study_complete() const noexcept { return study_complete_; }

  /// Persists the study progress outside the enclave via the platform's
  /// sealing mechanism (§4: "a TEE data-sealing mechanism is used to store
  /// data persistently outside the TEE"). Only an enclave with the same
  /// measurement on the same platform can restore it.
  common::Bytes seal_study_checkpoint();
  common::Status restore_study_checkpoint(common::BytesView sealed);

 private:
  std::uint32_t gdo_index_;
  genome::GenotypeMatrix cases_;
  genome::BitPlanes planes_;
  tee::EpcAllocation dataset_epc_;
  tee::EpcAllocation planes_epc_;

  std::optional<StudyAnnounce> announce_;
  std::vector<std::uint32_t> l_prime_;
  std::vector<std::uint32_t> l_double_prime_;
  std::vector<std::uint32_t> l_safe_;
  /// Next phase-2 tile index expected from the leader (stream sequencing).
  std::uint32_t phase2_next_tile_ = 0;
  bool study_complete_ = false;
};

/// Aggregated per-phase outcome of a coordinated study.
struct SelectionOutcome {
  std::vector<std::uint32_t> l_prime;
  std::vector<std::uint32_t> l_double_prime;
  std::vector<std::uint32_t> l_safe;
  double final_power = 0.0;
};

/// Work bookkeeping of the intersection-aware combination sweep
/// (StudyConfig::prune). The mask-size trajectories record the running
/// intersection's size after each evaluated combination, in evaluation
/// order (smallest case population first); each is non-increasing by
/// construction, and all stay empty when pruning is off. Phase-1 entries
/// are summed across tiles, so entry i is the total number of SNPs still
/// alive everywhere after the i-th combination folded in.
struct PruningStats {
  bool enabled = false;
  std::vector<std::uint32_t> maf_mask_sizes;
  std::vector<std::uint32_t> ld_mask_sizes;
  std::vector<std::uint32_t> lr_mask_sizes;
  /// Phase-1 restarts forced by the death of a combination whose kills were
  /// already folded into the mask (the fold must forget them).
  std::uint64_t maf_reassessments = 0;
  /// LD-phase pass restarts for the same reason (a walk's MissingMomentsError
  /// marks a GDO dead mid-pass).
  std::uint64_t ld_reassessments = 0;
  /// Combinations whose LD walk / LR selection was skipped outright because
  /// the running intersection was already empty.
  std::uint64_t ld_walks_skipped = 0;
  std::uint64_t lr_selections_skipped = 0;
};

/// Leader-side coordination module. Owns the reference panel (public data)
/// and the leader GDO's own enclave for its local dataset.
class Coordinator {
 public:
  /// `fetch_moments(request, targets)` must query exactly the member GDOs
  /// listed in `targets` (never the leader) for the requested pair and
  /// return their moments indexed by GDO index (other slots empty). The
  /// host implements it with a send/gather over the secure channels; a
  /// member that cannot be reached keeps an empty slot (and the host marks
  /// the peer lost as usual). With pruning off the coordinator targets
  /// every live member the first time a pair is touched, so the wire
  /// pattern matches the original broadcast protocol.
  using FetchMoments = std::function<std::vector<std::optional<stats::LdMoments>>(
      const MomentsRequest&, const std::vector<std::uint32_t>&)>;

  /// Sans-IO form of FetchMoments: returns a Task so the protocol session
  /// can suspend the LD phase mid-walk while member responses are in flight
  /// (the event-loop driver resumes it frame by frame). Same contract
  /// otherwise. The blocking FetchMoments overload of run_ld_phase adapts
  /// onto this one.
  using AsyncFetchMoments =
      std::function<common::Task<std::vector<std::optional<stats::LdMoments>>>(
          const MomentsRequest&, const std::vector<std::uint32_t>&)>;

  Coordinator(GdoEnclave& leader_enclave, genome::GenotypeMatrix reference,
              std::uint32_t num_gdos, StudyAnnounce announce);

  const StudyAnnounce& announce() const noexcept { return announce_; }

  /// Attaches the run's observability bundle. Each analysis phase then opens
  /// a span under `study_span` with one child span per evaluated combination
  /// ("<phase>.combination.<id>"), and records evaluation counters. Pass
  /// nullptr (the default state) to run unobserved.
  void set_observability(obs::Observability* obs,
                         obs::SpanId study_span = obs::kNoSpan) noexcept {
    obs_ = obs;
    study_span_ = study_span;
  }

  /// --- Liveness (degraded mode) ---
  /// Marks a GDO as unresponsive: every later phase skips combinations
  /// containing it instead of stalling on its missing contributions. The
  /// leader itself cannot be marked dead. Not thread-safe; call from the
  /// protocol thread only.
  common::Status mark_gdo_dead(std::uint32_t gdo_index);
  const std::set<std::uint32_t>& dead_gdos() const noexcept {
    return dead_gdos_;
  }
  /// True when no member of combination `combination_id` is marked dead.
  bool combination_live(std::size_t combination_id) const;
  std::size_t live_combination_count() const;
  /// Sum of |members(c)| over the live combinations: the expected total of
  /// per-member LR derivations (`lr.combination_matvecs`) for a clean run.
  std::size_t combination_members_total() const;

  /// Builds the combination table for a policy (shared by runner and tests).
  static std::vector<std::vector<std::uint32_t>> build_combinations(
      std::uint32_t num_gdos, const CollusionPolicy& policy);

  /// --- Tiling ---
  /// Phase-1 plan over the announced SNP range (fixed by the announce).
  const genome::TilePlan& maf_plan() const noexcept { return maf_plan_; }
  /// Phase-3 plan over L'' (valid after run_ld_phase).
  const genome::TilePlan& lr_plan() const noexcept { return lr_plan_; }

  /// --- Phase 1 ---
  /// Ingests one summary tile from `gdo_index` (the whole vector when
  /// tiling is off). Tiles may arrive in any order across GDOs; per GDO
  /// each tile arrives once and n_case must be consistent across tiles.
  common::Status add_summary(std::uint32_t gdo_index,
                             const SummaryStats& stats);
  bool phase1_ready() const noexcept;
  /// Pipelined MAF assessment: assesses every not-yet-assessed tile whose
  /// summaries arrived from all live members, in ascending tile order, and
  /// returns how many tiles were assessed. The host calls this after each
  /// summary arrival so the leader evaluates tile k while members stream
  /// tile k+1; run_maf_phase finishes whatever remains. Appending per-tile
  /// survivors in tile order keeps each combination's list sorted, so the
  /// final intersection is independent of the tile width.
  std::size_t assess_ready_maf_tiles();
  /// Runs per-combination MAF analysis and intersects (Alg. 1 lines 10-25).
  common::Result<Phase1Result> run_maf_phase();

  /// --- Phase 2 ---
  /// Runs the greedy LD walk for every combination (Alg. 1 lines 28-57),
  /// pulling member moments through `fetch` (cached per pair), and
  /// intersects the survivors. The walk is order-sequential (each pruning
  /// decision depends on every prior one), so phase 2 is not tiled; its
  /// per-pair messages are already O(1). Also fixes the phase-3 tile plan
  /// over L'' and the full-width phase-2 state the tile slices come from.
  common::Result<Phase2Result> run_ld_phase(const FetchMoments& fetch);
  /// Canonical (sans-IO) LD phase: identical decisions, counters, and cache
  /// behavior to the blocking overload, but every member fetch suspends the
  /// returned task instead of blocking a thread. `fetch` is taken by value:
  /// the coroutine frame owns its copy across suspensions.
  common::Task<common::Result<Phase2Result>> run_ld_phase_async(
      AsyncFetchMoments fetch);
  /// Per-tile Phase2Result bodies (column slices of run_ld_phase's return
  /// value; one entry per lr_plan() tile). Valid after run_ld_phase.
  std::vector<Phase2Result> phase2_tiles() const;

  /// --- Phase 3 ---
  common::Status add_lr_matrices(std::uint32_t gdo_index,
                                 const LrMatrices& matrices);
  bool phase3_ready() const noexcept;
  /// Derives the leader's own and the reference panel's per-tile LR matrix
  /// slices for every live combination (one EPC-charged per-tile basis at a
  /// time, so the leader's transient working set is O(tile) like the
  /// members'). Idempotent; run_lr_phase calls it for whatever remains. The
  /// host calls it right after broadcasting the phase-2 tiles so this
  /// leader-side assessment overlaps the members' own tile computations.
  common::Status derive_leader_lr_tiles();
  /// Merges per-combination LR matrices (ascending GDO order, reassembling
  /// full-width matrices from the per-tile column slices), runs the
  /// safe-subset selection per combination (optionally in parallel), and
  /// intersects. `pool` may be null for serial evaluation.
  common::Result<Phase3Result> run_lr_phase(common::ThreadPool* pool);

  const SelectionOutcome& outcome() const noexcept { return outcome_; }

  /// Count of distinct SNP pairs fetched during the LD phase (bandwidth
  /// accounting; cached pairs are fetched once).
  std::size_t ld_pairs_fetched() const noexcept { return moments_cache_.size(); }

  /// Whether this study runs the intersection-aware sweep (announce config).
  bool prune_enabled() const noexcept { return announce_.config.prune; }
  /// Sweep work bookkeeping (all zero / empty when pruning is off).
  const PruningStats& pruning_stats() const noexcept { return pruning_; }

 private:
  struct CombinationInputs;

  /// Per-pair cache slot: aggregated member moments plus whether the
  /// legacy-mode first-touch broadcast already went out for this pair.
  struct PairMoments {
    std::vector<std::optional<stats::LdMoments>> slots;  // per GDO
    bool broadcast_done = false;
  };

  common::Task<stats::LdMoments> aggregate_pair_async(
      const std::vector<std::uint32_t>& members, std::uint32_t a,
      std::uint32_t b, const AsyncFetchMoments& fetch);
  common::Error no_live_combination_error(const std::string& phase) const;
  /// Chi-squared association p-values for the combination's pooled cases vs
  /// the reference. `only` (optional) restricts the computation to the
  /// listed SNP ids — the LD walk reads no others; the rest stay 0.
  std::vector<double> combination_chi2_p_values(
      const std::vector<std::uint32_t>& members,
      const std::vector<std::uint32_t>* only = nullptr) const;
  bool maf_tile_ready(std::uint32_t tile) const;
  void assess_maf_tile(std::uint32_t tile);
  common::Status derive_leader_lr_tile(std::uint32_t tile);
  /// Pooled case population of combination `c` (phase-1 summaries must have
  /// arrived; every live member's n_case is known before any tile is
  /// assessed).
  std::uint64_t combination_case_population(std::size_t c) const;
  /// Live combinations ordered smallest case population first (ties by id):
  /// the evaluation order of the pruned sweep — small cohorts produce the
  /// most MAF/LD kills, so the intersection shrinks as early as possible.
  std::vector<std::size_t> pruning_order() const;
  /// Pruned phase 1 only: drops every folded mask and re-assesses all tiles
  /// already assessed, over the currently-live combination set.
  void reassess_maf_tiles();

  GdoEnclave* leader_;
  genome::GenotypeMatrix reference_;
  genome::BitPlanes reference_planes_;
  std::uint32_t num_gdos_;
  StudyAnnounce announce_;

  // Observability (may be null: unobserved run).
  obs::Observability* obs_ = nullptr;
  obs::SpanId study_span_ = obs::kNoSpan;

  // Liveness state: GDOs declared unresponsive by the host protocol layer.
  std::set<std::uint32_t> dead_gdos_;

  // Tiling. The phase-1 plan is fixed by the announce; the phase-3 plan is
  // fixed over L'' at the end of the LD phase. Both phase spans open lazily
  // (first tile assessed mid-gather) and close when their phase finishes.
  genome::TilePlan maf_plan_;
  genome::TilePlan lr_plan_;
  std::optional<obs::ScopedSpan> maf_span_;
  std::optional<obs::ScopedSpan> lr_span_;

  // Phase 1 state. Summaries assemble tile by tile into full-width vectors;
  // summary_tiles_[g][k] tracks which tiles of GDO g have arrived.
  std::vector<std::optional<SummaryStats>> summaries_;  // per GDO
  std::vector<std::vector<bool>> summary_tiles_;
  std::vector<std::uint32_t> reference_counts_;
  /// Per-combination MAF survivors accumulated in ascending tile order
  /// (empty vectors for combinations that died before assessment ended).
  std::vector<std::vector<std::uint32_t>> maf_survivors_;
  std::uint32_t next_maf_tile_ = 0;
  /// Pruned mode: combinations whose kills were folded into any tile mask.
  /// If one of them later dies its kills are wrong to keep, so run_maf_phase
  /// re-assesses from scratch over the live set.
  std::vector<bool> maf_mask_contributors_;

  // Intersection-aware sweep bookkeeping (prune_enabled() only).
  PruningStats pruning_;

  // Phase 2 state.
  std::vector<std::uint32_t> l_prime_;
  std::map<std::pair<std::uint32_t, std::uint32_t>, PairMoments>
      moments_cache_;  // per pair: per-GDO moments (absent for dead GDOs)
  std::map<std::pair<std::uint32_t, std::uint32_t>, stats::LdMoments>
      reference_moments_cache_;
  /// Monotone id for MomentsRequests (one per fetch round, not per pair).
  std::uint32_t next_moments_request_ = 0;

  // Phase 3 state.
  std::vector<std::uint32_t> l_double_prime_;
  /// Full-width phase-2 result the per-tile bodies are column slices of.
  Phase2Result phase2_full_;
  std::vector<std::vector<double>> case_freq_per_combination_;
  std::vector<double> reference_freq_;
  /// lr_matrix_tiles_[combination_id][tile][gdo_index] -> column slice of
  /// the member's LR matrix (only set for members of the combination).
  /// Sized at the end of the LD phase, when the L'' tile plan is known.
  std::vector<std::vector<std::map<std::uint32_t, stats::LrMatrix>>>
      lr_matrix_tiles_;
  /// Leader / reference per-tile matrix slices, [combination_id][tile];
  /// leader entries exist only for live combinations containing the leader.
  std::vector<std::vector<stats::LrMatrix>> leader_tiles_;
  std::vector<std::vector<stats::LrMatrix>> reference_tiles_;
  std::uint32_t next_lr_tile_ = 0;

  SelectionOutcome outcome_;
};

/// Intersection of sorted unique SNP lists (the per-phase intersection of
/// §5.6). Exposed for tests.
std::vector<std::uint32_t> intersect_sorted(
    const std::vector<std::vector<std::uint32_t>>& lists);

}  // namespace gendpr::core
