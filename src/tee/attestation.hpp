// Remote attestation (simulated quoting infrastructure).
//
// On SGX, a quoting enclave signs a report (MRENCLAVE + user data) with a
// platform key whose provenance Intel's attestation service vouches for.
// The simulation collapses that PKI into a deployment-wide QuotingAuthority
// holding a MAC key: quotes are HMAC-SHA256 over (platform, measurement,
// report_data). Everything the protocol relies on survives: a verifier
// learns, unforgeably (within the simulation), *which code* is talking and
// can bind channel key material via report_data. Forged and replayed quotes
// are rejected, which the failure-injection tests exercise.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "crypto/csprng.hpp"
#include "crypto/sha256.hpp"
#include "tee/identity.hpp"

namespace gendpr::tee {

struct Quote {
  EnclaveIdentity identity;
  /// 32 bytes chosen by the quoted enclave; the secure channel binds the
  /// hash of its ephemeral public key + session nonce here.
  crypto::Sha256Digest report_data{};
  crypto::Sha256Digest signature{};

  common::Bytes serialize() const;
  static common::Result<Quote> deserialize(common::BytesView data);
};

/// Deployment-wide attestation root. Each enclave requests quotes from it;
/// each verifier checks signatures against it.
class QuotingAuthority {
 public:
  static QuotingAuthority with_random_key(crypto::Csprng& rng);
  explicit QuotingAuthority(std::array<std::uint8_t, 32> key) noexcept;

  Quote issue(const EnclaveIdentity& identity,
              const crypto::Sha256Digest& report_data) const;

  /// Verifies the quote signature (authenticity) only; policy checks (is
  /// this the measurement I expect?) belong to the caller.
  common::Status verify(const Quote& quote) const;

  /// Verifies signature AND that the quoted measurement equals `expected`.
  common::Status verify_measurement(const Quote& quote,
                                    const Measurement& expected) const;

 private:
  crypto::Sha256Digest sign(const EnclaveIdentity& identity,
                            const crypto::Sha256Digest& report_data) const;

  std::array<std::uint8_t, 32> key_;
};

}  // namespace gendpr::tee
