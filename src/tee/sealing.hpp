// Data sealing (SGX-style persistent secrets).
//
// The paper stores intermediate data persistently outside the TEE via the
// SGX sealing mechanism: "Sealed data can only be encrypted/decrypted by the
// enclave using its private key" (§4). The simulation mirrors SGX's
// MRENCLAVE sealing policy: each platform holds a root sealing key (fused
// into the CPU on real hardware); the per-enclave key is derived from
// (root key, measurement), so only an enclave with the *same measurement on
// the same platform* can unseal.
#pragma once

#include <array>
#include <map>
#include <memory>
#include <mutex>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "crypto/aead.hpp"
#include "crypto/csprng.hpp"
#include "tee/identity.hpp"

namespace gendpr::tee {

/// One per simulated machine (GDO server). Owns the platform root key.
class SealingService {
 public:
  /// Generates a fresh random root key (normal operation).
  static SealingService with_random_root(crypto::Csprng& rng);

  /// Deterministic root for reproducible tests.
  explicit SealingService(std::array<std::uint8_t, 32> root_key) noexcept;

  /// Seals `plaintext` to the given measurement. Output layout:
  /// nonce (12B) || ciphertext || tag (16B). The measurement is bound as AAD.
  common::Bytes seal(const Measurement& measurement,
                     common::BytesView plaintext, crypto::Csprng& rng) const;

  /// Unseals a blob for the given measurement. Fails with decrypt_failed on
  /// tampering, truncation, a different measurement, or another platform's
  /// root key.
  common::Result<common::Bytes> unseal(const Measurement& measurement,
                                       common::BytesView sealed) const;

 private:
  common::Bytes sealing_key_for(const Measurement& measurement) const;
  const crypto::GcmContext& context_for(const Measurement& measurement) const;

  std::array<std::uint8_t, 32> root_key_;
  /// Per-measurement AEAD contexts: the HKDF derivation and key expansion
  /// run once per distinct measurement instead of once per blob. Map nodes
  /// are stable, so references stay valid after the lock is released; the
  /// indirection keeps the service movable (Platform holds it by value).
  struct ContextCache {
    std::mutex mutex;
    std::map<Measurement, crypto::GcmContext> contexts;
  };
  std::unique_ptr<ContextCache> cache_;
};

}  // namespace gendpr::tee
