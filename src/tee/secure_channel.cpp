#include "tee/secure_channel.hpp"

#include "crypto/hkdf.hpp"
#include "wire/serialize.hpp"

namespace gendpr::tee {

namespace {

crypto::GcmNonce nonce_for_seq(std::uint64_t seq) noexcept {
  crypto::GcmNonce nonce{};
  for (int i = 0; i < 8; ++i) {
    nonce[i] = static_cast<std::uint8_t>(seq >> (8 * i));
  }
  return nonce;
}

}  // namespace

crypto::Sha256Digest SecureChannel::bind_key(
    const crypto::X25519Key& eph_pub) {
  crypto::Sha256 h;
  h.update(common::to_bytes("gendpr.channel.bind.v1"));
  h.update(common::BytesView(eph_pub.data(), eph_pub.size()));
  return h.finish();
}

SecureChannel::SecureChannel(const QuotingAuthority& authority,
                             const EnclaveIdentity& self_identity,
                             const Measurement& expected_peer_measurement,
                             bool initiator, crypto::Csprng& rng)
    : authority_(&authority),
      self_identity_(self_identity),
      expected_peer_measurement_(expected_peer_measurement),
      initiator_(initiator),
      ephemeral_(crypto::x25519_keypair(rng.array<32>())),
      self_quote_(
          authority.issue(self_identity, bind_key(ephemeral_.public_key))) {}

common::Bytes SecureChannel::handshake_message() const {
  wire::Writer w;
  w.bytes(self_quote_.serialize());
  w.raw(common::BytesView(ephemeral_.public_key.data(),
                          ephemeral_.public_key.size()));
  return std::move(w).take();
}

common::Status SecureChannel::complete(common::BytesView peer_handshake) {
  if (established_) {
    return common::make_error(common::Errc::state_violation,
                              "channel already established");
  }
  wire::Reader r(peer_handshake);
  auto quote_bytes = r.bytes();
  if (!quote_bytes.ok()) return quote_bytes.error();
  auto peer_pub_raw = r.raw(crypto::kX25519KeySize);
  if (!peer_pub_raw.ok()) return peer_pub_raw.error();
  if (!r.exhausted()) {
    return common::make_error(common::Errc::bad_message,
                              "trailing bytes after handshake");
  }

  auto quote = Quote::deserialize(quote_bytes.value());
  if (!quote.ok()) return quote.error();

  crypto::X25519Key peer_pub;
  std::copy(peer_pub_raw.value().begin(), peer_pub_raw.value().end(),
            peer_pub.begin());

  // Attestation policy: authentic quote, expected trusted module, and the
  // quote must bind this very ephemeral key.
  if (auto status = authority_->verify_measurement(
          quote.value(), expected_peer_measurement_);
      !status.ok()) {
    return status;
  }
  const crypto::Sha256Digest expected_binding = bind_key(peer_pub);
  if (!common::ct_equal(
          common::BytesView(expected_binding.data(), expected_binding.size()),
          common::BytesView(quote.value().report_data.data(),
                            quote.value().report_data.size()))) {
    return common::make_error(common::Errc::attestation_rejected,
                              "quote does not bind handshake key");
  }

  const crypto::X25519Key shared = crypto::x25519(ephemeral_.secret, peer_pub);

  // Transcript: initiator key, then responder key - both sides compute it
  // identically regardless of message arrival order.
  crypto::Sha256 transcript;
  transcript.update(common::to_bytes("gendpr.channel.transcript.v1"));
  const crypto::X25519Key& init_pub =
      initiator_ ? ephemeral_.public_key : peer_pub;
  const crypto::X25519Key& resp_pub =
      initiator_ ? peer_pub : ephemeral_.public_key;
  transcript.update(common::BytesView(init_pub.data(), init_pub.size()));
  transcript.update(common::BytesView(resp_pub.data(), resp_pub.size()));
  const crypto::Sha256Digest salt = transcript.finish();

  const common::Bytes i2r = crypto::hkdf(
      common::BytesView(salt.data(), salt.size()),
      common::BytesView(shared.data(), shared.size()),
      common::to_bytes("gendpr.channel.key.i2r"), 32);
  const common::Bytes r2i = crypto::hkdf(
      common::BytesView(salt.data(), salt.size()),
      common::BytesView(shared.data(), shared.size()),
      common::to_bytes("gendpr.channel.key.r2i"), 32);
  send_ctx_.emplace(common::BytesView(initiator_ ? i2r : r2i));
  recv_ctx_.emplace(common::BytesView(initiator_ ? r2i : i2r));

  peer_identity_ = quote.value().identity;
  established_ = true;
  return common::Status::success();
}

common::Result<common::Bytes> SecureChannel::seal(
    common::BytesView plaintext) {
  if (!established_) {
    return common::make_error(common::Errc::state_violation,
                              "seal before handshake completed");
  }
  const std::uint64_t seq = send_seq_++;
  // One buffer, sized up front: seq header || ciphertext || tag. The header
  // bytes double as the AAD view, so nothing is serialized twice.
  common::Bytes record(8 + plaintext.size() + crypto::kGcmTagSize);
  for (int i = 0; i < 8; ++i) {
    record[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(seq >> (8 * i));
  }
  send_ctx_->seal_into(nonce_for_seq(seq),
                       common::BytesView(record.data(), 8), plaintext,
                       record.data() + 8);
  return record;
}

common::Status SecureChannel::seal_in_place(wire::WireBuffer& buf) {
  if (!established_) {
    return common::make_error(common::Errc::state_violation,
                              "seal before handshake completed");
  }
  constexpr std::size_t kBase =
      wire::WireBuffer::kHeaderBytes + wire::WireBuffer::kSeqBytes;
  common::Bytes& storage = buf.storage();
  if (storage.size() < kBase) {
    return common::make_error(common::Errc::state_violation,
                              "seal_in_place on a non-record buffer");
  }
  const std::size_t plaintext_size = storage.size() - kBase;
  const std::uint64_t seq = send_seq_++;
  // for_record reserved the tag bytes up front, so this never reallocates —
  // the plaintext view below stays valid.
  storage.resize(storage.size() + crypto::kGcmTagSize);
  std::uint8_t* seq_at = storage.data() + wire::WireBuffer::kHeaderBytes;
  for (int i = 0; i < 8; ++i) {
    seq_at[i] = static_cast<std::uint8_t>(seq >> (8 * i));
  }
  send_ctx_->seal_into(nonce_for_seq(seq), common::BytesView(seq_at, 8),
                       common::BytesView(storage.data() + kBase,
                                         plaintext_size),
                       storage.data() + kBase);
  return common::Status::success();
}

common::Status SecureChannel::seal_from(wire::BufferPool& pool,
                                        common::BytesView plaintext,
                                        wire::WireBuffer& out) {
  if (!established_) {
    return common::make_error(common::Errc::state_violation,
                              "seal before handshake completed");
  }
  constexpr std::size_t kBase =
      wire::WireBuffer::kHeaderBytes + wire::WireBuffer::kSeqBytes;
  wire::WireBuffer buf = wire::WireBuffer::for_record(pool, plaintext.size());
  common::Bytes& storage = buf.storage();
  storage.resize(kBase + plaintext.size() + crypto::kGcmTagSize);
  const std::uint64_t seq = send_seq_++;
  std::uint8_t* seq_at = storage.data() + wire::WireBuffer::kHeaderBytes;
  for (int i = 0; i < 8; ++i) {
    seq_at[i] = static_cast<std::uint8_t>(seq >> (8 * i));
  }
  send_ctx_->seal_into(nonce_for_seq(seq), common::BytesView(seq_at, 8),
                       plaintext, storage.data() + kBase);
  out = std::move(buf);
  return common::Status::success();
}

common::Result<common::Bytes> SecureChannel::open(common::BytesView record) {
  common::Bytes plaintext;
  if (auto status = open_to(record, plaintext); !status.ok()) {
    return status.error();
  }
  return plaintext;
}

common::Status SecureChannel::open_to(common::BytesView record,
                                      common::Bytes& plaintext) {
  if (!established_) {
    return common::make_error(common::Errc::state_violation,
                              "open before handshake completed");
  }
  wire::Reader r(record);
  auto seq = r.u64();
  if (!seq.ok()) return seq.error();
  if (seq.value() != recv_seq_) {
    return common::make_error(
        common::Errc::bad_message,
        "record out of order (replay or drop): expected seq " +
            std::to_string(recv_seq_) + ", got " +
            std::to_string(seq.value()));
  }
  if (auto status = recv_ctx_->open_to(nonce_for_seq(seq.value()),
                                       common::BytesView(record.data(), 8),
                                       record.subspan(8), plaintext);
      !status.ok()) {
    return status;
  }
  ++recv_seq_;
  return common::Status::success();
}

}  // namespace gendpr::tee
