#include "tee/sealing.hpp"

#include "crypto/gcm.hpp"
#include "crypto/hkdf.hpp"

namespace gendpr::tee {

SealingService SealingService::with_random_root(crypto::Csprng& rng) {
  return SealingService(rng.array<32>());
}

SealingService::SealingService(std::array<std::uint8_t, 32> root_key) noexcept
    : root_key_(root_key), cache_(std::make_unique<ContextCache>()) {}

common::Bytes SealingService::sealing_key_for(
    const Measurement& measurement) const {
  return crypto::hkdf(
      common::BytesView(measurement.data(), measurement.size()),
      common::BytesView(root_key_.data(), root_key_.size()),
      common::to_bytes("gendpr.sealing.v1"), 32);
}

const crypto::GcmContext& SealingService::context_for(
    const Measurement& measurement) const {
  const std::lock_guard<std::mutex> lock(cache_->mutex);
  auto it = cache_->contexts.find(measurement);
  if (it == cache_->contexts.end()) {
    const common::Bytes key = sealing_key_for(measurement);
    it = cache_->contexts
             .try_emplace(measurement, common::BytesView(key))
             .first;
  }
  return it->second;
}

common::Bytes SealingService::seal(const Measurement& measurement,
                                   common::BytesView plaintext,
                                   crypto::Csprng& rng) const {
  crypto::GcmNonce nonce;
  rng.fill(nonce);
  // One pre-sized buffer: nonce || ciphertext || tag, encrypted in place.
  common::Bytes out(crypto::kGcmNonceSize + plaintext.size() +
                    crypto::kGcmTagSize);
  std::copy(nonce.begin(), nonce.end(), out.begin());
  context_for(measurement)
      .seal_into(nonce,
                 common::BytesView(measurement.data(), measurement.size()),
                 plaintext, out.data() + crypto::kGcmNonceSize);
  return out;
}

common::Result<common::Bytes> SealingService::unseal(
    const Measurement& measurement, common::BytesView sealed) const {
  if (sealed.size() < crypto::kGcmNonceSize + crypto::kGcmTagSize) {
    return common::make_error(common::Errc::decrypt_failed,
                              "sealed blob too short");
  }
  crypto::GcmNonce nonce;
  std::copy(sealed.begin(), sealed.begin() + crypto::kGcmNonceSize,
            nonce.begin());
  return context_for(measurement)
      .open(nonce, common::BytesView(measurement.data(), measurement.size()),
            sealed.subspan(crypto::kGcmNonceSize));
}

}  // namespace gendpr::tee
