#include "tee/sealing.hpp"

#include "crypto/gcm.hpp"
#include "crypto/hkdf.hpp"

namespace gendpr::tee {

SealingService SealingService::with_random_root(crypto::Csprng& rng) {
  return SealingService(rng.array<32>());
}

SealingService::SealingService(std::array<std::uint8_t, 32> root_key) noexcept
    : root_key_(root_key) {}

common::Bytes SealingService::sealing_key_for(
    const Measurement& measurement) const {
  return crypto::hkdf(
      common::BytesView(measurement.data(), measurement.size()),
      common::BytesView(root_key_.data(), root_key_.size()),
      common::to_bytes("gendpr.sealing.v1"), 32);
}

common::Bytes SealingService::seal(const Measurement& measurement,
                                   common::BytesView plaintext,
                                   crypto::Csprng& rng) const {
  const common::Bytes key = sealing_key_for(measurement);
  crypto::GcmNonce nonce;
  rng.fill(nonce);
  const common::Bytes sealed = crypto::gcm_seal(
      key, nonce, common::BytesView(measurement.data(), measurement.size()),
      plaintext);
  common::Bytes out(nonce.begin(), nonce.end());
  out.reserve(out.size() + sealed.size());
  common::append(out, sealed);
  return out;
}

common::Result<common::Bytes> SealingService::unseal(
    const Measurement& measurement, common::BytesView sealed) const {
  if (sealed.size() < crypto::kGcmNonceSize + crypto::kGcmTagSize) {
    return common::make_error(common::Errc::decrypt_failed,
                              "sealed blob too short");
  }
  crypto::GcmNonce nonce;
  std::copy(sealed.begin(), sealed.begin() + crypto::kGcmNonceSize,
            nonce.begin());
  const common::Bytes key = sealing_key_for(measurement);
  return crypto::gcm_open(
      key, nonce, common::BytesView(measurement.data(), measurement.size()),
      sealed.subspan(crypto::kGcmNonceSize));
}

}  // namespace gendpr::tee
