// Enclave identity and measurement.
//
// In SGX, MRENCLAVE is the SHA-256 of the enclave's initial code/data pages.
// The simulation measures a *code identity string* (name + version + build
// salt) the same way: two enclaves running the same trusted module agree on
// the measurement; a tampered module yields a different one and is rejected
// during attestation. This preserves the paper's trust relation — "remote
// attestation ensures authenticity of the trusted part of GenDPR" (§4).
#pragma once

#include <cstdint>
#include <string>

#include "crypto/sha256.hpp"

namespace gendpr::tee {

using Measurement = crypto::Sha256Digest;

/// Computes the measurement of a trusted module from its code identity.
Measurement measure(const std::string& module_name,
                    const std::string& version);

struct EnclaveIdentity {
  /// Platform the enclave runs on (one per GDO machine in our federation).
  std::uint32_t platform_id = 0;
  Measurement measurement{};

  bool operator==(const EnclaveIdentity&) const = default;
};

/// Short hex prefix of a measurement, for logs.
std::string measurement_prefix(const Measurement& m);

}  // namespace gendpr::tee
