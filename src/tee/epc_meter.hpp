// Simulated Enclave Page Cache accounting.
//
// SGX1 enclaves are limited to ~128 MB of protected memory (§2.1 of the
// paper); GenDPR's design goal is to stay well within it by exchanging only
// intermediate aggregates. The meter tracks the trusted working set of each
// enclave so Table 3 ("average resource utilization", ~2 MB per enclave) can
// be reproduced, and enforces the limit so over-allocation surfaces as the
// same failure an SGX enclave would hit.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/error.hpp"

namespace gendpr::tee {

class EpcMeter {
 public:
  static constexpr std::uint64_t kDefaultLimitBytes = 128ull * 1024 * 1024;

  explicit EpcMeter(std::uint64_t limit_bytes = kDefaultLimitBytes) noexcept
      : limit_(limit_bytes) {}

  /// Records an allocation inside the enclave. Fails with capacity_exceeded
  /// if it would push the working set past the EPC limit.
  common::Status allocate(std::uint64_t bytes) noexcept;

  /// Records a release. Releasing more than allocated clamps to zero.
  void release(std::uint64_t bytes) noexcept;

  std::uint64_t in_use() const noexcept {
    return in_use_.load(std::memory_order_relaxed);
  }
  std::uint64_t peak() const noexcept {
    return peak_.load(std::memory_order_relaxed);
  }
  std::uint64_t limit() const noexcept { return limit_; }

  void reset_peak() noexcept {
    peak_.store(in_use(), std::memory_order_relaxed);
  }

 private:
  std::uint64_t limit_;
  std::atomic<std::uint64_t> in_use_{0};
  std::atomic<std::uint64_t> peak_{0};
};

/// RAII allocation: releases on destruction.
class EpcAllocation {
 public:
  EpcAllocation() = default;
  EpcAllocation(EpcMeter& meter, std::uint64_t bytes)
      : meter_(&meter), bytes_(bytes) {}
  ~EpcAllocation() { release(); }

  EpcAllocation(const EpcAllocation&) = delete;
  EpcAllocation& operator=(const EpcAllocation&) = delete;
  EpcAllocation(EpcAllocation&& other) noexcept
      : meter_(other.meter_), bytes_(other.bytes_) {
    other.meter_ = nullptr;
    other.bytes_ = 0;
  }
  EpcAllocation& operator=(EpcAllocation&& other) noexcept {
    if (this != &other) {
      release();
      meter_ = other.meter_;
      bytes_ = other.bytes_;
      other.meter_ = nullptr;
      other.bytes_ = 0;
    }
    return *this;
  }

  void release() noexcept {
    if (meter_ != nullptr && bytes_ > 0) meter_->release(bytes_);
    meter_ = nullptr;
    bytes_ = 0;
  }

 private:
  EpcMeter* meter_ = nullptr;
  std::uint64_t bytes_ = 0;
};

}  // namespace gendpr::tee
