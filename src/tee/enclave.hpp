// Enclave runtime: the base class all trusted modules derive from, plus the
// per-machine platform services bundle.
//
// A `Platform` models one GDO's TEE-enabled server: it owns the sealing root
// key (CPU-fused on real SGX) and the EPC meter, and references the
// deployment-wide quoting authority. An `Enclave` is a trusted module loaded
// on a platform: it carries its identity (platform id + measurement), can
// seal/unseal data bound to its measurement, request quotes, and open
// mutually-attested channels to remote enclaves. Host (untrusted) code holds
// the Enclave object but - by convention enforced through the protected API -
// only moves opaque sealed blobs and channel records.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "crypto/csprng.hpp"
#include "tee/attestation.hpp"
#include "tee/epc_meter.hpp"
#include "tee/identity.hpp"
#include "tee/sealing.hpp"
#include "tee/secure_channel.hpp"

namespace gendpr::tee {

/// Services of one TEE-enabled machine.
class Platform {
 public:
  Platform(std::uint32_t platform_id, const QuotingAuthority& authority,
           crypto::Csprng rng,
           std::uint64_t epc_limit = EpcMeter::kDefaultLimitBytes)
      : platform_id_(platform_id),
        authority_(&authority),
        rng_(std::move(rng)),
        sealing_(SealingService::with_random_root(rng_)),
        epc_(epc_limit) {}

  std::uint32_t id() const noexcept { return platform_id_; }
  const QuotingAuthority& authority() const noexcept { return *authority_; }
  const SealingService& sealing() const noexcept { return sealing_; }
  crypto::Csprng& rng() noexcept { return rng_; }
  EpcMeter& epc() noexcept { return epc_; }
  const EpcMeter& epc() const noexcept { return epc_; }

 private:
  std::uint32_t platform_id_;
  const QuotingAuthority* authority_;
  crypto::Csprng rng_;
  SealingService sealing_;
  EpcMeter epc_;
};

/// Base class for trusted modules.
class Enclave {
 public:
  Enclave(Platform& platform, const std::string& module_name,
          const std::string& version)
      : platform_(&platform),
        identity_{platform.id(), measure(module_name, version)} {}

  virtual ~Enclave() = default;

  const EnclaveIdentity& identity() const noexcept { return identity_; }
  const Measurement& measurement() const noexcept {
    return identity_.measurement;
  }
  Platform& platform() noexcept { return *platform_; }

  /// Seals data to this enclave's measurement on this platform.
  common::Bytes seal(common::BytesView plaintext) {
    return platform_->sealing().seal(identity_.measurement, plaintext,
                                     platform_->rng());
  }

  common::Result<common::Bytes> unseal(common::BytesView sealed) const {
    return platform_->sealing().unseal(identity_.measurement, sealed);
  }

  /// Opens a half-established attested channel toward a peer running the
  /// trusted module with measurement `peer_measurement`.
  std::unique_ptr<SecureChannel> channel_to(
      const Measurement& peer_measurement, bool initiator) {
    return std::make_unique<SecureChannel>(platform_->authority(), identity_,
                                           peer_measurement, initiator,
                                           platform_->rng());
  }

  /// Accounts `bytes` of trusted working-set memory for the lifetime of the
  /// returned guard. Throws via Result conversion at call sites when the EPC
  /// limit would be exceeded.
  common::Result<EpcAllocation> reserve_epc(std::uint64_t bytes) {
    if (auto status = platform_->epc().allocate(bytes); !status.ok()) {
      return status.error();
    }
    return EpcAllocation(platform_->epc(), bytes);
  }

 private:
  Platform* platform_;
  EnclaveIdentity identity_;
};

}  // namespace gendpr::tee
