#include "tee/attestation.hpp"

#include "crypto/hmac.hpp"
#include "wire/serialize.hpp"

namespace gendpr::tee {

common::Bytes Quote::serialize() const {
  wire::Writer w;
  w.u32(identity.platform_id);
  w.raw(common::BytesView(identity.measurement.data(),
                          identity.measurement.size()));
  w.raw(common::BytesView(report_data.data(), report_data.size()));
  w.raw(common::BytesView(signature.data(), signature.size()));
  return std::move(w).take();
}

common::Result<Quote> Quote::deserialize(common::BytesView data) {
  wire::Reader r(data);
  Quote quote;
  auto platform = r.u32();
  if (!platform.ok()) return platform.error();
  quote.identity.platform_id = platform.value();
  for (auto* field : {&quote.identity.measurement, &quote.report_data,
                      &quote.signature}) {
    auto raw = r.raw(field->size());
    if (!raw.ok()) return raw.error();
    std::copy(raw.value().begin(), raw.value().end(), field->begin());
  }
  if (!r.exhausted()) {
    return common::make_error(common::Errc::bad_message,
                              "trailing bytes after quote");
  }
  return quote;
}

QuotingAuthority QuotingAuthority::with_random_key(crypto::Csprng& rng) {
  return QuotingAuthority(rng.array<32>());
}

QuotingAuthority::QuotingAuthority(std::array<std::uint8_t, 32> key) noexcept
    : key_(key) {}

crypto::Sha256Digest QuotingAuthority::sign(
    const EnclaveIdentity& identity,
    const crypto::Sha256Digest& report_data) const {
  crypto::HmacSha256 h(common::BytesView(key_.data(), key_.size()));
  const std::string domain = "gendpr.quote.v1";
  h.update(common::to_bytes(domain));
  wire::Writer w;
  w.u32(identity.platform_id);
  h.update(w.buffer());
  h.update(common::BytesView(identity.measurement.data(),
                             identity.measurement.size()));
  h.update(common::BytesView(report_data.data(), report_data.size()));
  return h.finish();
}

Quote QuotingAuthority::issue(const EnclaveIdentity& identity,
                              const crypto::Sha256Digest& report_data) const {
  Quote quote;
  quote.identity = identity;
  quote.report_data = report_data;
  quote.signature = sign(identity, report_data);
  return quote;
}

common::Status QuotingAuthority::verify(const Quote& quote) const {
  const crypto::Sha256Digest expected =
      sign(quote.identity, quote.report_data);
  if (!common::ct_equal(
          common::BytesView(expected.data(), expected.size()),
          common::BytesView(quote.signature.data(), quote.signature.size()))) {
    return common::make_error(common::Errc::attestation_rejected,
                              "quote signature invalid");
  }
  return common::Status::success();
}

common::Status QuotingAuthority::verify_measurement(
    const Quote& quote, const Measurement& expected) const {
  if (auto status = verify(quote); !status.ok()) return status;
  if (quote.identity.measurement != expected) {
    return common::make_error(common::Errc::attestation_rejected,
                              "unexpected enclave measurement " +
                                  measurement_prefix(
                                      quote.identity.measurement));
  }
  return common::Status::success();
}

}  // namespace gendpr::tee
