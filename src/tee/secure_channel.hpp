// Mutually-attested secure channel between two enclaves.
//
// Implements the paper's requirement that "any communication between
// federation members is encrypted and happens only between TEEs" (§5.1):
//   1. each side generates an ephemeral X25519 keypair and obtains a quote
//      whose report_data binds the public key (so the quote cannot be
//      spliced onto a different handshake);
//   2. handshake messages are exchanged (transport is untrusted);
//   3. each side verifies the peer quote signature AND that the peer
//      measurement equals the expected trusted-module measurement;
//   4. per-direction AEAD keys are derived with HKDF from the X25519 shared
//      secret, salted by the handshake transcript.
// Records carry an explicit sequence number that doubles as the AEAD nonce
// and must arrive in order - replayed, reordered, or tampered records fail.
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "crypto/aead.hpp"
#include "crypto/csprng.hpp"
#include "crypto/x25519.hpp"
#include "tee/attestation.hpp"
#include "wire/buffer_pool.hpp"

namespace gendpr::tee {

class SecureChannel {
 public:
  /// Prepares the local half of a handshake. `initiator` breaks the key
  /// derivation symmetry; exactly one endpoint of a channel must set it.
  SecureChannel(const QuotingAuthority& authority,
                const EnclaveIdentity& self_identity,
                const Measurement& expected_peer_measurement, bool initiator,
                crypto::Csprng& rng);

  /// Handshake message to transmit to the peer (quote + ephemeral key).
  common::Bytes handshake_message() const;

  /// Consumes the peer's handshake message; on success the channel is
  /// established. Rejects invalid quotes, unexpected measurements, and
  /// report_data that does not bind the ephemeral key.
  common::Status complete(common::BytesView peer_handshake);

  bool established() const noexcept { return established_; }

  /// Identity of the attested peer (valid once established).
  const EnclaveIdentity& peer_identity() const noexcept {
    return peer_identity_;
  }

  /// Encrypts a message; output: seq (8B) || ciphertext || tag (16B).
  /// The record is assembled in one pre-sized buffer: the sequence header is
  /// written in place and doubles as the AAD, and the AEAD engine encrypts
  /// directly into the tail — no intermediate ciphertext copy.
  common::Result<common::Bytes> seal(common::BytesView plaintext);

  /// Zero-copy variant of seal for the pooled frame path: `buf` was built
  /// with WireBuffer::for_record and holds the plaintext at its final wire
  /// position. The sequence header is written into the reserved slot and the
  /// plaintext is encrypted in place (seal_into supports out == plaintext),
  /// growing the buffer by the 16-byte tag — no copy at all.
  common::Status seal_in_place(wire::WireBuffer& buf);

  /// Fan-out variant: seals an externally staged plaintext (serialized once,
  /// reused across peers) into a fresh pooled record buffer. The per-peer
  /// cost is exactly the AEAD pass; the staging bytes are never copied
  /// unencrypted.
  common::Status seal_from(wire::BufferPool& pool, common::BytesView plaintext,
                           wire::WireBuffer& out);

  /// Decrypts the next record; enforces strict sequence ordering.
  common::Result<common::Bytes> open(common::BytesView record);

  /// Scratch-reuse variant of open: decrypts into `plaintext` (resized to
  /// fit), so receive loops amortize one allocation across records.
  common::Status open_to(common::BytesView record, common::Bytes& plaintext);

  /// AEAD backend the established channel dispatches to.
  crypto::AeadBackend crypto_backend() const noexcept {
    return send_ctx_ ? send_ctx_->backend() : crypto::default_aead_backend();
  }

  /// Wire overhead per record in bytes (for bandwidth accounting).
  static constexpr std::size_t record_overhead() noexcept { return 8 + 16; }

 private:
  static crypto::Sha256Digest bind_key(const crypto::X25519Key& eph_pub);

  const QuotingAuthority* authority_;
  EnclaveIdentity self_identity_;
  Measurement expected_peer_measurement_;
  bool initiator_;
  crypto::X25519KeyPair ephemeral_;
  Quote self_quote_;

  bool established_ = false;
  EnclaveIdentity peer_identity_;
  /// Per-direction AEAD contexts: key schedule + GHASH tables expanded once
  /// at handshake completion, reused for every record on the channel.
  std::optional<crypto::GcmContext> send_ctx_;
  std::optional<crypto::GcmContext> recv_ctx_;
  std::uint64_t send_seq_ = 0;
  std::uint64_t recv_seq_ = 0;
};

}  // namespace gendpr::tee
