#include "tee/identity.hpp"

#include "common/bytes.hpp"

namespace gendpr::tee {

Measurement measure(const std::string& module_name,
                    const std::string& version) {
  crypto::Sha256 h;
  const std::string domain = "gendpr.enclave.measurement.v1";
  h.update(common::to_bytes(domain));
  h.update(common::to_bytes("|"));
  h.update(common::to_bytes(module_name));
  h.update(common::to_bytes("|"));
  h.update(common::to_bytes(version));
  return h.finish();
}

std::string measurement_prefix(const Measurement& m) {
  return common::to_hex(common::BytesView(m.data(), 8));
}

}  // namespace gendpr::tee
