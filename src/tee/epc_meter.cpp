#include "tee/epc_meter.hpp"

namespace gendpr::tee {

common::Status EpcMeter::allocate(std::uint64_t bytes) noexcept {
  std::uint64_t current = in_use_.load(std::memory_order_relaxed);
  for (;;) {
    if (current + bytes > limit_) {
      return common::make_error(common::Errc::capacity_exceeded,
                                "EPC limit exceeded");
    }
    if (in_use_.compare_exchange_weak(current, current + bytes,
                                      std::memory_order_relaxed)) {
      break;
    }
  }
  // Track peak (racy max update loop).
  std::uint64_t now = in_use_.load(std::memory_order_relaxed);
  std::uint64_t peak = peak_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
  return common::Status::success();
}

void EpcMeter::release(std::uint64_t bytes) noexcept {
  std::uint64_t current = in_use_.load(std::memory_order_relaxed);
  for (;;) {
    const std::uint64_t next = bytes > current ? 0 : current - bytes;
    if (in_use_.compare_exchange_weak(current, next,
                                      std::memory_order_relaxed)) {
      return;
    }
  }
}

}  // namespace gendpr::tee
