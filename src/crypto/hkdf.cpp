#include "crypto/hkdf.hpp"

#include <stdexcept>

#include "crypto/hmac.hpp"

namespace gendpr::crypto {

common::Bytes hkdf_extract(common::BytesView salt, common::BytesView ikm) {
  const Sha256Digest prk = HmacSha256::mac(salt, ikm);
  return common::Bytes(prk.begin(), prk.end());
}

common::Bytes hkdf_expand(common::BytesView prk, common::BytesView info,
                          std::size_t length) {
  if (length == 0 || length > 255 * kSha256DigestSize) {
    throw std::invalid_argument("hkdf_expand: length out of range");
  }
  common::Bytes okm;
  okm.reserve(length);
  common::Bytes block;  // T(i-1)
  std::uint8_t counter = 1;
  while (okm.size() < length) {
    HmacSha256 h(prk);
    h.update(block);
    h.update(info);
    h.update(common::BytesView(&counter, 1));
    const Sha256Digest t = h.finish();
    block.assign(t.begin(), t.end());
    const std::size_t take = std::min(block.size(), length - okm.size());
    okm.insert(okm.end(), block.begin(), block.begin() + take);
    ++counter;
  }
  return okm;
}

common::Bytes hkdf(common::BytesView salt, common::BytesView ikm,
                   common::BytesView info, std::size_t length) {
  const common::Bytes prk = hkdf_extract(salt, ikm);
  return hkdf_expand(prk, info, length);
}

}  // namespace gendpr::crypto
