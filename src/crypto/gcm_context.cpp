#include "crypto/aead.hpp"

#include <atomic>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <string_view>

#include "crypto/cpu_features.hpp"
#include "crypto/gcm_backend.hpp"

namespace gendpr::crypto {

namespace {

std::atomic<std::uint64_t> g_records_sealed{0};
std::atomic<std::uint64_t> g_bytes_sealed{0};

struct U128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
};

std::uint64_t load_be64(const std::uint8_t* p) noexcept {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  if constexpr (std::endian::native == std::endian::little) {
    v = __builtin_bswap64(v);
  }
  return v;
}

void store_be64(std::uint64_t v, std::uint8_t* p) noexcept {
  if constexpr (std::endian::native == std::endian::little) {
    v = __builtin_bswap64(v);
  }
  std::memcpy(p, &v, 8);
}

U128 load_u128(const std::uint8_t* p) noexcept {
  return U128{load_be64(p), load_be64(p + 8)};
}

void store_u128(const U128& x, std::uint8_t* p) noexcept {
  store_be64(x.hi, p);
  store_be64(x.lo, p + 8);
}

/// Reduction constants for the 4-bit right shift of Shoup's GHASH method.
constexpr std::uint16_t kLast4[16] = {
    0x0000, 0x1c20, 0x3840, 0x2460, 0x7080, 0x6ca0, 0x48c0, 0x54e0,
    0xe100, 0xfd20, 0xd940, 0xc560, 0x9180, 0x8da0, 0xa9c0, 0xb5e0};

/// Builds the 16-entry nibble*H product tables (Shoup's method, as in
/// mbedTLS) into `hl`/`hh`. Done once per key by the GcmContext constructor.
void build_ghash_tables(const U128& h, std::uint64_t hl[16],
                        std::uint64_t hh[16]) noexcept {
  std::uint64_t vh = h.hi;
  std::uint64_t vl = h.lo;
  hl[8] = vl;
  hh[8] = vh;
  for (int i = 4; i > 0; i >>= 1) {
    const std::uint32_t t = static_cast<std::uint32_t>(vl & 1) * 0xe1000000u;
    vl = (vh << 63) | (vl >> 1);
    vh = (vh >> 1) ^ (static_cast<std::uint64_t>(t) << 32);
    hl[i] = vl;
    hh[i] = vh;
  }
  hl[0] = 0;
  hh[0] = 0;
  for (int i = 2; i <= 8; i *= 2) {
    for (int j = 1; j < i; ++j) {
      hh[i + j] = hh[i] ^ hh[j];
      hl[i + j] = hl[i] ^ hl[j];
    }
  }
}

U128 ghash_mul(const std::uint64_t hl[16], const std::uint64_t hh[16],
               const U128& x) noexcept {
  std::uint8_t bytes[16];
  store_u128(x, bytes);
  std::uint8_t lo = bytes[15] & 0xf;
  std::uint64_t zh = hh[lo];
  std::uint64_t zl = hl[lo];
  for (int i = 15; i >= 0; --i) {
    lo = bytes[i] & 0xf;
    const std::uint8_t hi_nibble = bytes[i] >> 4;
    if (i != 15) {
      std::uint8_t rem = static_cast<std::uint8_t>(zl & 0xf);
      zl = (zh << 60) | (zl >> 4);
      zh = (zh >> 4) ^ (static_cast<std::uint64_t>(kLast4[rem]) << 48);
      zh ^= hh[lo];
      zl ^= hl[lo];
    }
    std::uint8_t rem = static_cast<std::uint8_t>(zl & 0xf);
    zl = (zh << 60) | (zl >> 4);
    zh = (zh >> 4) ^ (static_cast<std::uint64_t>(kLast4[rem]) << 48);
    zh ^= hh[hi_nibble];
    zl ^= hl[hi_nibble];
  }
  return U128{zh, zl};
}

/// Streaming GHASH over the per-key tables. Full blocks are folded straight
/// from the input (no staging memcpy); only section tails touch the buffer.
class Ghash {
 public:
  Ghash(const std::uint64_t* hl, const std::uint64_t* hh) noexcept
      : hl_(hl), hh_(hh) {}

  void update(common::BytesView data) noexcept {
    std::size_t offset = 0;
    if (buffer_len_ > 0) {
      const std::size_t take =
          std::min<std::size_t>(16 - buffer_len_, data.size());
      std::memcpy(buffer_ + buffer_len_, data.data(), take);
      buffer_len_ += take;
      offset += take;
      if (buffer_len_ < 16) return;
      fold(load_u128(buffer_));
      buffer_len_ = 0;
    }
    while (data.size() - offset >= 16) {
      fold(load_u128(data.data() + offset));
      offset += 16;
    }
    if (offset < data.size()) {
      buffer_len_ = data.size() - offset;
      std::memcpy(buffer_, data.data() + offset, buffer_len_);
    }
  }

  /// Zero-pads the current partial block (block boundary between the AAD
  /// and ciphertext sections).
  void pad_to_block() noexcept {
    if (buffer_len_ > 0) {
      std::memset(buffer_ + buffer_len_, 0, 16 - buffer_len_);
      fold(load_u128(buffer_));
      buffer_len_ = 0;
    }
  }

  U128 finish(std::uint64_t aad_bits, std::uint64_t ct_bits) noexcept {
    pad_to_block();
    fold(U128{aad_bits, ct_bits});
    return y_;
  }

 private:
  void fold(const U128& block) noexcept {
    y_.hi ^= block.hi;
    y_.lo ^= block.lo;
    y_ = ghash_mul(hl_, hh_, y_);
  }

  const std::uint64_t* hl_;
  const std::uint64_t* hh_;
  U128 y_;
  std::uint8_t buffer_[16] = {};
  std::size_t buffer_len_ = 0;
};

void set_counter(std::uint8_t block[16], std::uint32_t counter) noexcept {
  block[12] = static_cast<std::uint8_t>(counter >> 24);
  block[13] = static_cast<std::uint8_t>(counter >> 16);
  block[14] = static_cast<std::uint8_t>(counter >> 8);
  block[15] = static_cast<std::uint8_t>(counter);
}

void xor_words(const std::uint8_t* in, const std::uint8_t* keystream,
               std::uint8_t* out, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; i += 8) {
    std::uint64_t x;
    std::uint64_t k;
    std::memcpy(&x, in + i, 8);
    std::memcpy(&k, keystream + i, 8);
    x ^= k;
    std::memcpy(out + i, &x, 8);
  }
}

/// Portable GCM-CTR (counter starts at 2; 1 is the tag mask): four blocks of
/// keystream per round with word-wise XOR, falling back to a byte loop only
/// for the final partial block.
void portable_ctr(const Aes256& aes, const GcmNonce& nonce,
                  common::BytesView in, std::uint8_t* out) noexcept {
  std::uint8_t counter_block[16];
  std::memcpy(counter_block, nonce.data(), kGcmNonceSize);
  std::uint32_t counter = 2;
  std::size_t offset = 0;
  std::uint8_t counters[64];
  std::uint8_t keystream[64];
  while (in.size() - offset >= 64) {
    for (int b = 0; b < 4; ++b) {
      set_counter(counter_block, counter++);
      std::memcpy(counters + 16 * b, counter_block, 16);
    }
    aes.encrypt4_blocks(counters, keystream);
    xor_words(in.data() + offset, keystream, out + offset, 64);
    offset += 64;
  }
  while (offset < in.size()) {
    set_counter(counter_block, counter++);
    aes.encrypt_block(counter_block, keystream);
    const std::size_t take = std::min<std::size_t>(16, in.size() - offset);
    if (take == 16) {
      xor_words(in.data() + offset, keystream, out + offset, 16);
    } else {
      for (std::size_t i = 0; i < take; ++i) {
        out[offset + i] =
            static_cast<std::uint8_t>(in[offset + i] ^ keystream[i]);
      }
    }
    offset += take;
  }
}

bool native_supported() noexcept {
  if (!detail::native_gcm_compiled()) return false;
  const CpuFeatures& cpu = cpu_features();
  return cpu.aesni && cpu.pclmul && cpu.ssse3;
}

}  // namespace

const char* aead_backend_name(AeadBackend backend) noexcept {
  return backend == AeadBackend::native ? "native" : "portable";
}

bool aead_backend_available(AeadBackend backend) noexcept {
  return backend == AeadBackend::portable || native_supported();
}

AeadBackend default_aead_backend() noexcept {
  // Re-read on every call: contexts are created once per channel key, and
  // tests toggle the override between constructions.
  if (const char* env = std::getenv("GENDPR_CRYPTO_BACKEND")) {
    const std::string_view value(env);
    if (value == "portable") return AeadBackend::portable;
    if (value == "native" && native_supported()) return AeadBackend::native;
    // Unknown values (and "native" without CPU support) fall through to
    // auto-detection rather than failing a run over a typo.
  }
  return native_supported() ? AeadBackend::native : AeadBackend::portable;
}

AeadCounters aead_counters() noexcept {
  AeadCounters counters;
  counters.records_sealed = g_records_sealed.load(std::memory_order_relaxed);
  counters.bytes_sealed = g_bytes_sealed.load(std::memory_order_relaxed);
  return counters;
}

GcmContext::GcmContext(common::BytesView key, AeadBackend backend)
    : aes_(key) {
  aes_.export_schedule(schedule_);
  // H = E_K(0^128): the GHASH key both backends derive their tables from.
  std::uint8_t zero_block[16] = {};
  aes_.encrypt_block(zero_block, h_bytes_);
  build_ghash_tables(load_u128(h_bytes_), ghash_hl_, ghash_hh_);
  backend_ =
      aead_backend_available(backend) ? backend : AeadBackend::portable;
}

GcmContext::GcmContext(common::BytesView key)
    : GcmContext(key, default_aead_backend()) {}

GcmContext::~GcmContext() {
  common::secure_zero(std::span<std::uint8_t>(schedule_, sizeof(schedule_)));
  common::secure_zero(std::span<std::uint8_t>(h_bytes_, sizeof(h_bytes_)));
  common::secure_zero(std::span<std::uint8_t>(
      reinterpret_cast<std::uint8_t*>(ghash_hl_), sizeof(ghash_hl_)));
  common::secure_zero(std::span<std::uint8_t>(
      reinterpret_cast<std::uint8_t*>(ghash_hh_), sizeof(ghash_hh_)));
}

void GcmContext::ctr_transform(const GcmNonce& nonce, common::BytesView in,
                               std::uint8_t* out) const {
  if (in.empty()) return;
  if (backend_ == AeadBackend::native) {
    detail::native_ctr(schedule_, nonce, in.data(), in.size(), out);
  } else {
    portable_ctr(aes_, nonce, in, out);
  }
}

void GcmContext::compute_tag(const GcmNonce& nonce, common::BytesView aad,
                             common::BytesView ciphertext,
                             std::uint8_t tag[kGcmTagSize]) const {
  if (backend_ == AeadBackend::native) {
    detail::native_ghash_tag(schedule_, h_bytes_, nonce, aad, ciphertext,
                             tag);
    return;
  }
  Ghash ghash(ghash_hl_, ghash_hh_);
  ghash.update(aad);
  ghash.pad_to_block();
  ghash.update(ciphertext);
  const U128 s = ghash.finish(aad.size() * 8, ciphertext.size() * 8);

  // Tag = GHASH xor E_K(J0), J0 = nonce || 0x00000001 for 96-bit nonces.
  std::uint8_t j0[16];
  std::memcpy(j0, nonce.data(), kGcmNonceSize);
  j0[12] = 0;
  j0[13] = 0;
  j0[14] = 0;
  j0[15] = 1;
  std::uint8_t mask[16];
  aes_.encrypt_block(j0, mask);
  std::uint8_t s_bytes[16];
  store_u128(s, s_bytes);
  for (int i = 0; i < 16; ++i) {
    tag[i] = static_cast<std::uint8_t>(s_bytes[i] ^ mask[i]);
  }
}

void GcmContext::seal_into(const GcmNonce& nonce, common::BytesView aad,
                           common::BytesView plaintext,
                           std::uint8_t* out) const {
  ctr_transform(nonce, plaintext, out);
  compute_tag(nonce, aad, common::BytesView(out, plaintext.size()),
              out + plaintext.size());
  g_records_sealed.fetch_add(1, std::memory_order_relaxed);
  g_bytes_sealed.fetch_add(plaintext.size(), std::memory_order_relaxed);
}

common::Bytes GcmContext::seal(const GcmNonce& nonce, common::BytesView aad,
                               common::BytesView plaintext) const {
  common::Bytes out(plaintext.size() + kGcmTagSize);
  seal_into(nonce, aad, plaintext, out.data());
  return out;
}

common::Result<std::size_t> GcmContext::open_into(const GcmNonce& nonce,
                                                  common::BytesView aad,
                                                  common::BytesView sealed,
                                                  std::uint8_t* out) const {
  if (sealed.size() < kGcmTagSize) {
    return common::make_error(common::Errc::decrypt_failed,
                              "gcm_open: input shorter than tag");
  }
  const std::size_t ct_len = sealed.size() - kGcmTagSize;
  const common::BytesView ciphertext(sealed.data(), ct_len);
  const common::BytesView tag(sealed.data() + ct_len, kGcmTagSize);

  std::uint8_t expected_tag[kGcmTagSize];
  compute_tag(nonce, aad, ciphertext, expected_tag);
  if (!common::ct_equal(common::BytesView(expected_tag, kGcmTagSize), tag)) {
    return common::make_error(common::Errc::decrypt_failed,
                              "gcm_open: authentication tag mismatch");
  }
  ctr_transform(nonce, ciphertext, out);
  return ct_len;
}

common::Status GcmContext::open_to(const GcmNonce& nonce,
                                   common::BytesView aad,
                                   common::BytesView sealed,
                                   common::Bytes& plaintext) const {
  if (sealed.size() < kGcmTagSize) {
    return common::make_error(common::Errc::decrypt_failed,
                              "gcm_open: input shorter than tag");
  }
  plaintext.resize(sealed.size() - kGcmTagSize);
  auto opened = open_into(nonce, aad, sealed, plaintext.data());
  if (!opened.ok()) return opened.error();
  return common::Status::success();
}

common::Result<common::Bytes> GcmContext::open(const GcmNonce& nonce,
                                               common::BytesView aad,
                                               common::BytesView sealed) const {
  common::Bytes plaintext;
  if (auto status = open_to(nonce, aad, sealed, plaintext); !status.ok()) {
    return status.error();
  }
  return plaintext;
}

}  // namespace gendpr::crypto
