#include "crypto/cpu_features.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace gendpr::crypto {

namespace {

CpuFeatures probe() noexcept {
  CpuFeatures features;
#if defined(__x86_64__) || defined(__i386__)
  unsigned eax = 0;
  unsigned ebx = 0;
  unsigned ecx = 0;
  unsigned edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) != 0) {
    features.aesni = (ecx & (1u << 25)) != 0;
    features.pclmul = (ecx & (1u << 1)) != 0;
    features.ssse3 = (ecx & (1u << 9)) != 0;
    features.sse41 = (ecx & (1u << 19)) != 0;
  }
#endif
  return features;
}

}  // namespace

const CpuFeatures& cpu_features() noexcept {
  static const CpuFeatures features = probe();
  return features;
}

}  // namespace gendpr::crypto
