#include "crypto/cpu_features.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace gendpr::crypto {

namespace {

#if defined(__x86_64__) || defined(__i386__)
/// XGETBV(0): which register states the OS saves/restores. Inline asm so
/// this TU needs no -mxsave; only executed when CPUID.1:ECX.OSXSAVE is set.
unsigned long long xgetbv0() noexcept {
  unsigned eax = 0;
  unsigned edx = 0;
  __asm__ volatile("xgetbv" : "=a"(eax), "=d"(edx) : "c"(0));
  return (static_cast<unsigned long long>(edx) << 32) | eax;
}
#endif

CpuFeatures probe() noexcept {
  CpuFeatures features;
#if defined(__x86_64__) || defined(__i386__)
  unsigned eax = 0;
  unsigned ebx = 0;
  unsigned ecx = 0;
  unsigned edx = 0;
  bool ymm_state = false;
  bool zmm_state = false;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) != 0) {
    features.aesni = (ecx & (1u << 25)) != 0;
    features.pclmul = (ecx & (1u << 1)) != 0;
    features.ssse3 = (ecx & (1u << 9)) != 0;
    features.sse41 = (ecx & (1u << 19)) != 0;
    if ((ecx & (1u << 27)) != 0) {  // OSXSAVE
      const unsigned long long xcr0 = xgetbv0();
      ymm_state = (xcr0 & 0x6) == 0x6;           // XMM + YMM
      zmm_state = ymm_state && (xcr0 & 0xe0) == 0xe0;  // opmask + ZMM
    }
  }
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) != 0) {
    features.avx2 = ymm_state && (ebx & (1u << 5)) != 0;
    const bool avx512f = (ebx & (1u << 16)) != 0;
    const bool avx512bw = (ebx & (1u << 30)) != 0;
    const bool vpopcntdq = (ecx & (1u << 14)) != 0;
    features.avx512_popcount = zmm_state && avx512f && avx512bw && vpopcntdq;
  }
#endif
  return features;
}

}  // namespace

const CpuFeatures& cpu_features() noexcept {
  static const CpuFeatures features = probe();
  return features;
}

}  // namespace gendpr::crypto
