// Pluggable AES-256-GCM engine with per-key precomputation and runtime
// backend dispatch.
//
// Every record a channel or the sealing service protects goes through a
// `GcmContext`: the AES key schedule and the GHASH key material are expanded
// once when the context is created, not once per record as the historical
// `gcm_seal`/`gcm_open` free functions did. Two backends implement the same
// record math and produce byte-identical ciphertexts and tags:
//
//   * portable — the always-compiled C++ kernels (T-table AES, Shoup 4-bit
//     GHASH), batched four CTR blocks at a time with word-wise XOR;
//   * native   — x86-64 AES-NI + PCLMULQDQ kernels with an eight-block
//     interleaved CTR pipeline, selected at runtime via CPUID.
//
// Because GCM is deterministic in (key, nonce, AAD, plaintext), backend
// choice is invisible on the wire: a blob sealed on an AES-NI host deseals
// on a portable-only host and vice versa. `GENDPR_CRYPTO_BACKEND` forces a
// backend (`portable` or `native`) for A/B benchmarking and tests; the
// cross-backend equivalence suite in tests/crypto keeps the two honest.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "crypto/aes256.hpp"
#include "crypto/gcm.hpp"

namespace gendpr::crypto {

enum class AeadBackend : std::uint8_t { portable = 0, native = 1 };

/// Stable lowercase backend label ("portable" / "native") used in run
/// reports, metrics labels, and the GENDPR_CRYPTO_BACKEND override.
const char* aead_backend_name(AeadBackend backend) noexcept;

/// True when the backend's kernels are compiled in AND the executing CPU
/// supports them. `portable` is always available.
bool aead_backend_available(AeadBackend backend) noexcept;

/// Backend a default-constructed GcmContext picks: the
/// GENDPR_CRYPTO_BACKEND environment override when set to an available
/// backend, otherwise `native` when supported, otherwise `portable`.
/// Re-read on every call so tests can toggle the override.
AeadBackend default_aead_backend() noexcept;

/// Process-wide monotonic seal accounting, exported into run reports as
/// per-run deltas (records = AEAD invocations, bytes = plaintext sealed).
struct AeadCounters {
  std::uint64_t records_sealed = 0;
  std::uint64_t bytes_sealed = 0;
};
AeadCounters aead_counters() noexcept;

/// AES-256-GCM context bound to one key. Construction expands the AES key
/// schedule, derives the GHASH key H = E_K(0^128), and builds the per-key
/// tables both backends consume; seal/open then run with zero per-record
/// setup. Key material is zeroized on destruction.
class GcmContext {
 public:
  /// Dispatches to default_aead_backend().
  explicit GcmContext(common::BytesView key);
  /// Forces a backend; falls back to portable when `backend` is unavailable
  /// on this CPU (so forced-native test code degrades instead of crashing).
  GcmContext(common::BytesView key, AeadBackend backend);
  ~GcmContext();

  GcmContext(const GcmContext&) = delete;
  GcmContext& operator=(const GcmContext&) = delete;

  AeadBackend backend() const noexcept { return backend_; }

  /// Writes ciphertext || tag (plaintext.size() + kGcmTagSize bytes) into
  /// `out`. In-place encryption (out == plaintext.data()) is supported.
  void seal_into(const GcmNonce& nonce, common::BytesView aad,
                 common::BytesView plaintext, std::uint8_t* out) const;

  /// Allocating convenience over seal_into.
  common::Bytes seal(const GcmNonce& nonce, common::BytesView aad,
                     common::BytesView plaintext) const;

  /// Verifies the tag over `sealed` (ciphertext || tag), then decrypts into
  /// `out` (sealed.size() - kGcmTagSize bytes). Decrypting in place over the
  /// ciphertext (out == sealed.data()) is supported; nothing is written
  /// before the tag check passes. Returns the plaintext length.
  common::Result<std::size_t> open_into(const GcmNonce& nonce,
                                        common::BytesView aad,
                                        common::BytesView sealed,
                                        std::uint8_t* out) const;

  /// Scratch-reuse open: resizes `plaintext` to the payload length and
  /// decrypts into it, so receive loops amortize one buffer across records.
  common::Status open_to(const GcmNonce& nonce, common::BytesView aad,
                         common::BytesView sealed,
                         common::Bytes& plaintext) const;

  /// Allocating convenience over open_to.
  common::Result<common::Bytes> open(const GcmNonce& nonce,
                                     common::BytesView aad,
                                     common::BytesView sealed) const;

 private:
  void compute_tag(const GcmNonce& nonce, common::BytesView aad,
                   common::BytesView ciphertext,
                   std::uint8_t tag[kGcmTagSize]) const;
  void ctr_transform(const GcmNonce& nonce, common::BytesView in,
                     std::uint8_t* out) const;

  Aes256 aes_;
  /// Round keys in FIPS byte order for the AES-NI kernels.
  alignas(16) std::uint8_t schedule_[Aes256::kScheduleBytes];
  /// GHASH key H = E_K(0^128) as big-endian bytes (PCLMUL backend input).
  alignas(16) std::uint8_t h_bytes_[kAesBlockSize];
  /// Shoup 4-bit GHASH tables (portable backend): nibble*H products.
  std::uint64_t ghash_hl_[16];
  std::uint64_t ghash_hh_[16];
  AeadBackend backend_;
};

}  // namespace gendpr::crypto
