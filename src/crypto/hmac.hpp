// HMAC-SHA256 (RFC 2104 / FIPS 198-1).
//
// Used as the MAC under HKDF and as the signature primitive of the simulated
// quoting authority (tee/attestation). Verified against RFC 4231 test vectors.
#pragma once

#include "common/bytes.hpp"
#include "crypto/sha256.hpp"

namespace gendpr::crypto {

/// Incremental HMAC-SHA256 keyed at construction.
class HmacSha256 {
 public:
  explicit HmacSha256(common::BytesView key) noexcept;

  void update(common::BytesView data) noexcept;
  Sha256Digest finish() noexcept;

  /// One-shot convenience.
  static Sha256Digest mac(common::BytesView key,
                          common::BytesView data) noexcept;

  /// Constant-time verification of a tag against the expected MAC.
  static bool verify(common::BytesView key, common::BytesView data,
                     common::BytesView tag) noexcept;

 private:
  Sha256 inner_;
  std::array<std::uint8_t, kSha256BlockSize> outer_pad_{};
};

}  // namespace gendpr::crypto
