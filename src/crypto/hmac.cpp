#include "crypto/hmac.hpp"

#include <cstring>

namespace gendpr::crypto {

HmacSha256::HmacSha256(common::BytesView key) noexcept {
  std::array<std::uint8_t, kSha256BlockSize> block_key{};
  if (key.size() > kSha256BlockSize) {
    const Sha256Digest digest = Sha256::hash(key);
    std::memcpy(block_key.data(), digest.data(), digest.size());
  } else {
    if (!key.empty()) std::memcpy(block_key.data(), key.data(), key.size());
  }

  std::array<std::uint8_t, kSha256BlockSize> inner_pad;
  for (std::size_t i = 0; i < kSha256BlockSize; ++i) {
    inner_pad[i] = static_cast<std::uint8_t>(block_key[i] ^ 0x36);
    outer_pad_[i] = static_cast<std::uint8_t>(block_key[i] ^ 0x5c);
  }
  inner_.update(common::BytesView(inner_pad.data(), inner_pad.size()));
  common::secure_zero(block_key);
  common::secure_zero(inner_pad);
}

void HmacSha256::update(common::BytesView data) noexcept {
  inner_.update(data);
}

Sha256Digest HmacSha256::finish() noexcept {
  const Sha256Digest inner_digest = inner_.finish();
  Sha256 outer;
  outer.update(common::BytesView(outer_pad_.data(), outer_pad_.size()));
  outer.update(common::BytesView(inner_digest.data(), inner_digest.size()));
  common::secure_zero(outer_pad_);
  return outer.finish();
}

Sha256Digest HmacSha256::mac(common::BytesView key,
                             common::BytesView data) noexcept {
  HmacSha256 h(key);
  h.update(data);
  return h.finish();
}

bool HmacSha256::verify(common::BytesView key, common::BytesView data,
                        common::BytesView tag) noexcept {
  const Sha256Digest expected = mac(key, data);
  return common::ct_equal(
      common::BytesView(expected.data(), expected.size()), tag);
}

}  // namespace gendpr::crypto
