// AES-256 block cipher (FIPS 197).
//
// Only the raw block transform lives here; authenticated encryption is
// provided by crypto/gcm.hpp on top. Verified against the FIPS 197 appendix
// C.3 known-answer vector and NIST CAVP ECB vectors.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace gendpr::crypto {

inline constexpr std::size_t kAes256KeySize = 32;
inline constexpr std::size_t kAesBlockSize = 16;

using AesKey = std::array<std::uint8_t, kAes256KeySize>;
using AesBlock = std::array<std::uint8_t, kAesBlockSize>;

/// AES-256 with an expanded key schedule held in the object. The schedule is
/// zeroized on destruction.
class Aes256 {
 public:
  /// AES-256 is 14 rounds; the schedule holds kRounds + 1 round keys.
  static constexpr int kRounds = 14;
  static constexpr std::size_t kScheduleBytes =
      kAesBlockSize * (kRounds + 1);

  explicit Aes256(common::BytesView key);
  ~Aes256();

  Aes256(const Aes256&) = delete;
  Aes256& operator=(const Aes256&) = delete;

  void encrypt_block(const std::uint8_t in[kAesBlockSize],
                     std::uint8_t out[kAesBlockSize]) const noexcept;
  void decrypt_block(const std::uint8_t in[kAesBlockSize],
                     std::uint8_t out[kAesBlockSize]) const noexcept;

  /// Encrypts four independent blocks with interleaved state. A single
  /// T-table block is latency-bound on the L1 load chain; four blocks in
  /// flight let the loads pipeline, which is what the portable CTR mode
  /// batches for. `in`/`out` hold 4 * kAesBlockSize bytes.
  void encrypt4_blocks(const std::uint8_t in[4 * kAesBlockSize],
                       std::uint8_t out[4 * kAesBlockSize]) const noexcept;

  /// Copies the encryption round keys in FIPS byte order — the exact layout
  /// the AES-NI kernels load with unaligned 128-bit reads. `out` must hold
  /// kScheduleBytes bytes.
  void export_schedule(std::uint8_t* out) const noexcept;

 private:
  // 15 round keys of 16 bytes each, stored as 60 32-bit words.
  std::array<std::uint32_t, 4 * (kRounds + 1)> round_keys_{};
  std::array<std::uint32_t, 4 * (kRounds + 1)> dec_round_keys_{};
};

}  // namespace gendpr::crypto
