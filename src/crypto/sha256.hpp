// SHA-256 (FIPS 180-4).
//
// Used for enclave measurements, dataset manifests, transcript hashes in the
// attested handshake, and as the compression function under HMAC/HKDF.
// Verified against FIPS 180-4 / NIST CAVP known-answer vectors in
// tests/crypto/sha256_test.cpp.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace gendpr::crypto {

inline constexpr std::size_t kSha256DigestSize = 32;
inline constexpr std::size_t kSha256BlockSize = 64;

using Sha256Digest = std::array<std::uint8_t, kSha256DigestSize>;

/// Incremental SHA-256. Typical use:
///   Sha256 h; h.update(a); h.update(b); auto d = h.finish();
/// `finish()` may be called once; the object is then exhausted.
class Sha256 {
 public:
  Sha256() noexcept;

  void update(common::BytesView data) noexcept;
  Sha256Digest finish() noexcept;

  /// One-shot convenience.
  static Sha256Digest hash(common::BytesView data) noexcept;

 private:
  void process_block(const std::uint8_t* block) noexcept;

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, kSha256BlockSize> buffer_{};
  std::uint64_t total_bytes_ = 0;
  std::size_t buffer_len_ = 0;
};

/// Digest as an owning byte vector (handy for wire/serialization call sites).
common::Bytes sha256(common::BytesView data);

}  // namespace gendpr::crypto
