// x86-64 AES-NI + PCLMULQDQ kernels for the AEAD engine.
//
// This translation unit is the only one compiled with -maes/-mpclmul/-mssse3
// (see src/crypto/CMakeLists.txt), so the instructions never leak into code
// that runs before the CPUID dispatch. The CTR pipeline keeps eight blocks
// in flight to cover the AESENC latency; GHASH uses the carry-less-multiply
// reduction from Intel's GCM white paper (Gueron & Kounavis), operating on
// byte-reversed blocks. Output is byte-identical to the portable kernels —
// the cross-backend equivalence suite in tests/crypto/aead_backend_test.cpp
// and the NIST CAVP vectors pin both.
#include "crypto/gcm_backend.hpp"

#include <cstring>

#if defined(__x86_64__) || defined(_M_X64)
#define GENDPR_GCM_PCLMUL_COMPILED 1
#include <immintrin.h>
#endif

namespace gendpr::crypto::detail {

#if defined(GENDPR_GCM_PCLMUL_COMPILED)

namespace {

constexpr int kRounds = 14;  // AES-256

inline __m128i byte_swap(__m128i x) noexcept {
  const __m128i mask =
      _mm_set_epi8(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15);
  return _mm_shuffle_epi8(x, mask);
}

inline __m128i encrypt_block(const __m128i rk[kRounds + 1],
                             __m128i block) noexcept {
  block = _mm_xor_si128(block, rk[0]);
  for (int r = 1; r < kRounds; ++r) block = _mm_aesenc_si128(block, rk[r]);
  return _mm_aesenclast_si128(block, rk[kRounds]);
}

inline void load_schedule(const std::uint8_t* schedule,
                          __m128i rk[kRounds + 1]) noexcept {
  for (int r = 0; r <= kRounds; ++r) {
    rk[r] = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(schedule + 16 * r));
  }
}

/// GF(2^128) product of byte-reversed GHASH operands: Karatsuba-free
/// four-multiply schoolbook, bit-reflection fix-up via a one-bit left
/// shift, then the two-step polynomial reduction (Intel white paper,
/// Algorithm 1 / Figure 5).
inline __m128i gfmul(__m128i a, __m128i b) noexcept {
  __m128i tmp3 = _mm_clmulepi64_si128(a, b, 0x00);
  __m128i tmp4 = _mm_clmulepi64_si128(a, b, 0x10);
  __m128i tmp5 = _mm_clmulepi64_si128(a, b, 0x01);
  __m128i tmp6 = _mm_clmulepi64_si128(a, b, 0x11);

  tmp4 = _mm_xor_si128(tmp4, tmp5);
  tmp5 = _mm_slli_si128(tmp4, 8);
  tmp4 = _mm_srli_si128(tmp4, 8);
  tmp3 = _mm_xor_si128(tmp3, tmp5);
  tmp6 = _mm_xor_si128(tmp6, tmp4);

  __m128i tmp7 = _mm_srli_epi32(tmp3, 31);
  __m128i tmp8 = _mm_srli_epi32(tmp6, 31);
  tmp3 = _mm_slli_epi32(tmp3, 1);
  tmp6 = _mm_slli_epi32(tmp6, 1);

  __m128i tmp9 = _mm_srli_si128(tmp7, 12);
  tmp8 = _mm_slli_si128(tmp8, 4);
  tmp7 = _mm_slli_si128(tmp7, 4);
  tmp3 = _mm_or_si128(tmp3, tmp7);
  tmp6 = _mm_or_si128(tmp6, tmp8);
  tmp6 = _mm_or_si128(tmp6, tmp9);

  tmp7 = _mm_slli_epi32(tmp3, 31);
  tmp8 = _mm_slli_epi32(tmp3, 30);
  tmp9 = _mm_slli_epi32(tmp3, 25);
  tmp7 = _mm_xor_si128(tmp7, tmp8);
  tmp7 = _mm_xor_si128(tmp7, tmp9);
  tmp8 = _mm_srli_si128(tmp7, 4);
  tmp7 = _mm_slli_si128(tmp7, 12);
  tmp3 = _mm_xor_si128(tmp3, tmp7);

  __m128i tmp2 = _mm_srli_epi32(tmp3, 1);
  tmp4 = _mm_srli_epi32(tmp3, 2);
  tmp5 = _mm_srli_epi32(tmp3, 7);
  tmp2 = _mm_xor_si128(tmp2, tmp4);
  tmp2 = _mm_xor_si128(tmp2, tmp5);
  tmp2 = _mm_xor_si128(tmp2, tmp8);
  tmp3 = _mm_xor_si128(tmp3, tmp2);
  return _mm_xor_si128(tmp6, tmp3);
}

}  // namespace

bool native_gcm_compiled() noexcept { return true; }

void native_ctr(const std::uint8_t* schedule, const GcmNonce& nonce,
                const std::uint8_t* in, std::size_t len,
                std::uint8_t* out) noexcept {
  __m128i rk[kRounds + 1];
  load_schedule(schedule, rk);

  std::uint8_t counter_bytes[16];
  std::memcpy(counter_bytes, nonce.data(), kGcmNonceSize);
  std::uint32_t counter = 2;  // counter 1 is reserved for the tag mask
  const auto counter_block = [&](std::uint32_t c) noexcept {
    counter_bytes[12] = static_cast<std::uint8_t>(c >> 24);
    counter_bytes[13] = static_cast<std::uint8_t>(c >> 16);
    counter_bytes[14] = static_cast<std::uint8_t>(c >> 8);
    counter_bytes[15] = static_cast<std::uint8_t>(c);
    return _mm_loadu_si128(reinterpret_cast<const __m128i*>(counter_bytes));
  };

  std::size_t offset = 0;
  while (len - offset >= 8 * 16) {
    __m128i blocks[8];
    for (int b = 0; b < 8; ++b) {
      blocks[b] = _mm_xor_si128(
          counter_block(counter + static_cast<std::uint32_t>(b)), rk[0]);
    }
    for (int r = 1; r < kRounds; ++r) {
      for (auto& block : blocks) block = _mm_aesenc_si128(block, rk[r]);
    }
    for (auto& block : blocks) {
      block = _mm_aesenclast_si128(block, rk[kRounds]);
    }
    for (int b = 0; b < 8; ++b) {
      const __m128i data = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(in + offset + 16 * b));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + offset + 16 * b),
                       _mm_xor_si128(blocks[b], data));
    }
    counter += 8;
    offset += 8 * 16;
  }

  while (offset < len) {
    const __m128i keystream = encrypt_block(rk, counter_block(counter++));
    const std::size_t take = std::min<std::size_t>(16, len - offset);
    if (take == 16) {
      const __m128i data =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + offset));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + offset),
                       _mm_xor_si128(keystream, data));
    } else {
      std::uint8_t ks_bytes[16];
      _mm_storeu_si128(reinterpret_cast<__m128i*>(ks_bytes), keystream);
      for (std::size_t i = 0; i < take; ++i) {
        out[offset + i] =
            static_cast<std::uint8_t>(in[offset + i] ^ ks_bytes[i]);
      }
    }
    offset += take;
  }
}

void native_ghash_tag(const std::uint8_t* schedule,
                      const std::uint8_t h_bytes[kAesBlockSize],
                      const GcmNonce& nonce, common::BytesView aad,
                      common::BytesView ciphertext,
                      std::uint8_t tag[kGcmTagSize]) noexcept {
  const __m128i h = byte_swap(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(h_bytes)));
  __m128i y = _mm_setzero_si128();

  // One GHASH section (AAD or ciphertext): fold full blocks straight from
  // the input, zero-pad the section tail to a block boundary.
  const auto ghash_section = [&](common::BytesView data) noexcept {
    std::size_t offset = 0;
    while (data.size() - offset >= 16 && !data.empty()) {
      const __m128i block = byte_swap(_mm_loadu_si128(
          reinterpret_cast<const __m128i*>(data.data() + offset)));
      y = gfmul(_mm_xor_si128(y, block), h);
      offset += 16;
    }
    if (offset < data.size()) {
      std::uint8_t padded[16] = {};
      std::memcpy(padded, data.data() + offset, data.size() - offset);
      const __m128i block = byte_swap(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(padded)));
      y = gfmul(_mm_xor_si128(y, block), h);
    }
  };
  ghash_section(aad);
  ghash_section(ciphertext);

  std::uint8_t lengths[16];
  const std::uint64_t aad_bits = aad.size() * 8;
  const std::uint64_t ct_bits = ciphertext.size() * 8;
  for (int i = 0; i < 8; ++i) {
    lengths[i] = static_cast<std::uint8_t>(aad_bits >> (56 - 8 * i));
    lengths[8 + i] = static_cast<std::uint8_t>(ct_bits >> (56 - 8 * i));
  }
  const __m128i lengths_block =
      byte_swap(_mm_loadu_si128(reinterpret_cast<const __m128i*>(lengths)));
  y = gfmul(_mm_xor_si128(y, lengths_block), h);

  // Tag = GHASH xor E_K(J0), J0 = nonce || 0x00000001 for 96-bit nonces.
  __m128i rk[kRounds + 1];
  load_schedule(schedule, rk);
  std::uint8_t j0[16];
  std::memcpy(j0, nonce.data(), kGcmNonceSize);
  j0[12] = 0;
  j0[13] = 0;
  j0[14] = 0;
  j0[15] = 1;
  const __m128i mask = encrypt_block(
      rk, _mm_loadu_si128(reinterpret_cast<const __m128i*>(j0)));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(tag),
                   _mm_xor_si128(byte_swap(y), mask));
}

#else  // !GENDPR_GCM_PCLMUL_COMPILED

// Non-x86-64 build: the dispatcher never selects the native backend, so
// these stubs only satisfy the linker.
bool native_gcm_compiled() noexcept { return false; }

void native_ctr(const std::uint8_t*, const GcmNonce&, const std::uint8_t*,
                std::size_t, std::uint8_t*) noexcept {}

void native_ghash_tag(const std::uint8_t*, const std::uint8_t[kAesBlockSize],
                      const GcmNonce&, common::BytesView, common::BytesView,
                      std::uint8_t[kGcmTagSize]) noexcept {}

#endif  // GENDPR_GCM_PCLMUL_COMPILED

}  // namespace gendpr::crypto::detail
