// Runtime CPU capability detection for the crypto kernel dispatch.
//
// The AEAD engine (crypto/aead.hpp) selects its x86-64 AES-NI + PCLMULQDQ
// backend only when the executing CPU advertises the instructions, so one
// binary runs correctly on every host. Detection happens once per process;
// non-x86 builds report no features and always take the portable kernels.
#pragma once

namespace gendpr::crypto {

struct CpuFeatures {
  bool aesni = false;   // AES round instructions (CPUID.1:ECX.AES)
  bool pclmul = false;  // carry-less multiply (CPUID.1:ECX.PCLMULQDQ)
  bool ssse3 = false;   // PSHUFB, used for GHASH byte reversal
  bool sse41 = false;   // PINSR/PEXTR conveniences in the CTR kernels
};

/// Features of the executing CPU, probed once and cached.
const CpuFeatures& cpu_features() noexcept;

}  // namespace gendpr::crypto
