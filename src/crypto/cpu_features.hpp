// Runtime CPU capability detection for the SIMD kernel dispatchers.
//
// The AEAD engine (crypto/aead.hpp) and the genome kernel layer
// (genome/kernels/kernels.hpp) select their x86-64 backends only when the
// executing CPU advertises the instructions, so one binary runs correctly on
// every host. Detection happens once per process; non-x86 builds report no
// features and always take the portable kernels.
#pragma once

namespace gendpr::crypto {

struct CpuFeatures {
  bool aesni = false;   // AES round instructions (CPUID.1:ECX.AES)
  bool pclmul = false;  // carry-less multiply (CPUID.1:ECX.PCLMULQDQ)
  bool ssse3 = false;   // PSHUFB, used for GHASH byte reversal
  bool sse41 = false;   // PINSR/PEXTR conveniences in the CTR kernels
  // The AVX flags below are usability, not just presence: they also require
  // OSXSAVE and the XGETBV-reported OS state for YMM (and ZMM/opmask for
  // AVX-512), because executing wide instructions without saved register
  // state faults even when CPUID advertises them.
  bool avx2 = false;            // CPUID.7.0:EBX.AVX2 + YMM state
  bool avx512_popcount = false; // AVX512F+BW+VPOPCNTDQ + ZMM/opmask state
};

/// Features of the executing CPU, probed once and cached.
const CpuFeatures& cpu_features() noexcept;

}  // namespace gendpr::crypto
