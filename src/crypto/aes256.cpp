#include "crypto/aes256.hpp"

#include <cstring>
#include <stdexcept>

namespace gendpr::crypto {

namespace {

// Forward S-box (FIPS 197 figure 7).
constexpr std::uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b,
    0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26,
    0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed,
    0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f,
    0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14,
    0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f,
    0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11,
    0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f,
    0xb0, 0x54, 0xbb, 0x16};

// Inverse S-box.
constexpr std::uint8_t kInvSbox[256] = {
    0x52, 0x09, 0x6a, 0xd5, 0x30, 0x36, 0xa5, 0x38, 0xbf, 0x40, 0xa3, 0x9e,
    0x81, 0xf3, 0xd7, 0xfb, 0x7c, 0xe3, 0x39, 0x82, 0x9b, 0x2f, 0xff, 0x87,
    0x34, 0x8e, 0x43, 0x44, 0xc4, 0xde, 0xe9, 0xcb, 0x54, 0x7b, 0x94, 0x32,
    0xa6, 0xc2, 0x23, 0x3d, 0xee, 0x4c, 0x95, 0x0b, 0x42, 0xfa, 0xc3, 0x4e,
    0x08, 0x2e, 0xa1, 0x66, 0x28, 0xd9, 0x24, 0xb2, 0x76, 0x5b, 0xa2, 0x49,
    0x6d, 0x8b, 0xd1, 0x25, 0x72, 0xf8, 0xf6, 0x64, 0x86, 0x68, 0x98, 0x16,
    0xd4, 0xa4, 0x5c, 0xcc, 0x5d, 0x65, 0xb6, 0x92, 0x6c, 0x70, 0x48, 0x50,
    0xfd, 0xed, 0xb9, 0xda, 0x5e, 0x15, 0x46, 0x57, 0xa7, 0x8d, 0x9d, 0x84,
    0x90, 0xd8, 0xab, 0x00, 0x8c, 0xbc, 0xd3, 0x0a, 0xf7, 0xe4, 0x58, 0x05,
    0xb8, 0xb3, 0x45, 0x06, 0xd0, 0x2c, 0x1e, 0x8f, 0xca, 0x3f, 0x0f, 0x02,
    0xc1, 0xaf, 0xbd, 0x03, 0x01, 0x13, 0x8a, 0x6b, 0x3a, 0x91, 0x11, 0x41,
    0x4f, 0x67, 0xdc, 0xea, 0x97, 0xf2, 0xcf, 0xce, 0xf0, 0xb4, 0xe6, 0x73,
    0x96, 0xac, 0x74, 0x22, 0xe7, 0xad, 0x35, 0x85, 0xe2, 0xf9, 0x37, 0xe8,
    0x1c, 0x75, 0xdf, 0x6e, 0x47, 0xf1, 0x1a, 0x71, 0x1d, 0x29, 0xc5, 0x89,
    0x6f, 0xb7, 0x62, 0x0e, 0xaa, 0x18, 0xbe, 0x1b, 0xfc, 0x56, 0x3e, 0x4b,
    0xc6, 0xd2, 0x79, 0x20, 0x9a, 0xdb, 0xc0, 0xfe, 0x78, 0xcd, 0x5a, 0xf4,
    0x1f, 0xdd, 0xa8, 0x33, 0x88, 0x07, 0xc7, 0x31, 0xb1, 0x12, 0x10, 0x59,
    0x27, 0x80, 0xec, 0x5f, 0x60, 0x51, 0x7f, 0xa9, 0x19, 0xb5, 0x4a, 0x0d,
    0x2d, 0xe5, 0x7a, 0x9f, 0x93, 0xc9, 0x9c, 0xef, 0xa0, 0xe0, 0x3b, 0x4d,
    0xae, 0x2a, 0xf5, 0xb0, 0xc8, 0xeb, 0xbb, 0x3c, 0x83, 0x53, 0x99, 0x61,
    0x17, 0x2b, 0x04, 0x7e, 0xba, 0x77, 0xd6, 0x26, 0xe1, 0x69, 0x14, 0x63,
    0x55, 0x21, 0x0c, 0x7d};

std::uint8_t xtime(std::uint8_t x) noexcept {
  return static_cast<std::uint8_t>((x << 1) ^ ((x >> 7) * 0x1b));
}

std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b) noexcept {
  std::uint8_t result = 0;
  while (b != 0) {
    if (b & 1) result = static_cast<std::uint8_t>(result ^ a);
    a = xtime(a);
    b >>= 1;
  }
  return result;
}

// Encryption T-tables (fused SubBytes+ShiftRows+MixColumns), built once from
// the S-box at static-initialization time. Te0[x] packs the MixColumns column
// {02,01,01,03}*S[x]; Te1..Te3 are byte rotations of Te0.
struct EncTables {
  std::uint32_t te0[256];
  std::uint32_t te1[256];
  std::uint32_t te2[256];
  std::uint32_t te3[256];

  EncTables() noexcept {
    for (int i = 0; i < 256; ++i) {
      const std::uint8_t s = kSbox[i];
      const std::uint8_t s2 = xtime(s);
      const std::uint8_t s3 = static_cast<std::uint8_t>(s2 ^ s);
      te0[i] = (std::uint32_t{s2} << 24) | (std::uint32_t{s} << 16) |
               (std::uint32_t{s} << 8) | std::uint32_t{s3};
      te1[i] = (te0[i] >> 8) | (te0[i] << 24);
      te2[i] = (te0[i] >> 16) | (te0[i] << 16);
      te3[i] = (te0[i] >> 24) | (te0[i] << 8);
    }
  }
};

const EncTables& enc_tables() noexcept {
  static const EncTables tables;
  return tables;
}

std::uint32_t sub_word(std::uint32_t w) noexcept {
  return (std::uint32_t{kSbox[(w >> 24) & 0xff]} << 24) |
         (std::uint32_t{kSbox[(w >> 16) & 0xff]} << 16) |
         (std::uint32_t{kSbox[(w >> 8) & 0xff]} << 8) |
         std::uint32_t{kSbox[w & 0xff]};
}

std::uint32_t rot_word(std::uint32_t w) noexcept {
  return (w << 8) | (w >> 24);
}

}  // namespace

Aes256::Aes256(common::BytesView key) {
  if (key.size() != kAes256KeySize) {
    throw std::invalid_argument("Aes256: key must be 32 bytes");
  }
  constexpr int nk = 8;  // key length in words
  constexpr int total_words = 4 * (kRounds + 1);

  for (int i = 0; i < nk; ++i) {
    round_keys_[i] = (std::uint32_t{key[4 * i]} << 24) |
                     (std::uint32_t{key[4 * i + 1]} << 16) |
                     (std::uint32_t{key[4 * i + 2]} << 8) |
                     std::uint32_t{key[4 * i + 3]};
  }
  std::uint32_t rcon = 0x01000000;
  for (int i = nk; i < total_words; ++i) {
    std::uint32_t temp = round_keys_[i - 1];
    if (i % nk == 0) {
      temp = sub_word(rot_word(temp)) ^ rcon;
      rcon = std::uint32_t{gf_mul(static_cast<std::uint8_t>(rcon >> 24), 2)}
             << 24;
    } else if (i % nk == 4) {
      temp = sub_word(temp);
    }
    round_keys_[i] = round_keys_[i - nk] ^ temp;
  }
  dec_round_keys_ = round_keys_;
}

Aes256::~Aes256() {
  common::secure_zero(std::span<std::uint8_t>(
      reinterpret_cast<std::uint8_t*>(round_keys_.data()),
      round_keys_.size() * sizeof(std::uint32_t)));
  common::secure_zero(std::span<std::uint8_t>(
      reinterpret_cast<std::uint8_t*>(dec_round_keys_.data()),
      dec_round_keys_.size() * sizeof(std::uint32_t)));
}

void Aes256::export_schedule(std::uint8_t* out) const noexcept {
  for (std::size_t i = 0; i < round_keys_.size(); ++i) {
    const std::uint32_t w = round_keys_[i];
    out[4 * i + 0] = static_cast<std::uint8_t>(w >> 24);
    out[4 * i + 1] = static_cast<std::uint8_t>(w >> 16);
    out[4 * i + 2] = static_cast<std::uint8_t>(w >> 8);
    out[4 * i + 3] = static_cast<std::uint8_t>(w);
  }
}

void Aes256::encrypt_block(const std::uint8_t in[kAesBlockSize],
                           std::uint8_t out[kAesBlockSize]) const noexcept {
  const EncTables& t = enc_tables();
  const std::uint32_t* rk = round_keys_.data();

  std::uint32_t s0 = (std::uint32_t{in[0]} << 24) | (std::uint32_t{in[1]} << 16) |
                     (std::uint32_t{in[2]} << 8) | in[3];
  std::uint32_t s1 = (std::uint32_t{in[4]} << 24) | (std::uint32_t{in[5]} << 16) |
                     (std::uint32_t{in[6]} << 8) | in[7];
  std::uint32_t s2 = (std::uint32_t{in[8]} << 24) | (std::uint32_t{in[9]} << 16) |
                     (std::uint32_t{in[10]} << 8) | in[11];
  std::uint32_t s3 = (std::uint32_t{in[12]} << 24) |
                     (std::uint32_t{in[13]} << 16) |
                     (std::uint32_t{in[14]} << 8) | in[15];
  s0 ^= rk[0];
  s1 ^= rk[1];
  s2 ^= rk[2];
  s3 ^= rk[3];

  std::uint32_t t0, t1, t2, t3;
  for (int round = 1; round < kRounds; ++round) {
    rk += 4;
    t0 = t.te0[s0 >> 24] ^ t.te1[(s1 >> 16) & 0xff] ^
         t.te2[(s2 >> 8) & 0xff] ^ t.te3[s3 & 0xff] ^ rk[0];
    t1 = t.te0[s1 >> 24] ^ t.te1[(s2 >> 16) & 0xff] ^
         t.te2[(s3 >> 8) & 0xff] ^ t.te3[s0 & 0xff] ^ rk[1];
    t2 = t.te0[s2 >> 24] ^ t.te1[(s3 >> 16) & 0xff] ^
         t.te2[(s0 >> 8) & 0xff] ^ t.te3[s1 & 0xff] ^ rk[2];
    t3 = t.te0[s3 >> 24] ^ t.te1[(s0 >> 16) & 0xff] ^
         t.te2[(s1 >> 8) & 0xff] ^ t.te3[s2 & 0xff] ^ rk[3];
    s0 = t0;
    s1 = t1;
    s2 = t2;
    s3 = t3;
  }

  // Final round: SubBytes + ShiftRows + AddRoundKey (no MixColumns).
  rk += 4;
  t0 = (std::uint32_t{kSbox[s0 >> 24]} << 24) |
       (std::uint32_t{kSbox[(s1 >> 16) & 0xff]} << 16) |
       (std::uint32_t{kSbox[(s2 >> 8) & 0xff]} << 8) |
       std::uint32_t{kSbox[s3 & 0xff]};
  t1 = (std::uint32_t{kSbox[s1 >> 24]} << 24) |
       (std::uint32_t{kSbox[(s2 >> 16) & 0xff]} << 16) |
       (std::uint32_t{kSbox[(s3 >> 8) & 0xff]} << 8) |
       std::uint32_t{kSbox[s0 & 0xff]};
  t2 = (std::uint32_t{kSbox[s2 >> 24]} << 24) |
       (std::uint32_t{kSbox[(s3 >> 16) & 0xff]} << 16) |
       (std::uint32_t{kSbox[(s0 >> 8) & 0xff]} << 8) |
       std::uint32_t{kSbox[s1 & 0xff]};
  t3 = (std::uint32_t{kSbox[s3 >> 24]} << 24) |
       (std::uint32_t{kSbox[(s0 >> 16) & 0xff]} << 16) |
       (std::uint32_t{kSbox[(s1 >> 8) & 0xff]} << 8) |
       std::uint32_t{kSbox[s2 & 0xff]};
  t0 ^= rk[0];
  t1 ^= rk[1];
  t2 ^= rk[2];
  t3 ^= rk[3];

  for (int i = 0; i < 4; ++i) {
    out[4 * 0 + i] = static_cast<std::uint8_t>(t0 >> (24 - 8 * i));
    out[4 * 1 + i] = static_cast<std::uint8_t>(t1 >> (24 - 8 * i));
    out[4 * 2 + i] = static_cast<std::uint8_t>(t2 >> (24 - 8 * i));
    out[4 * 3 + i] = static_cast<std::uint8_t>(t3 >> (24 - 8 * i));
  }
}

void Aes256::encrypt4_blocks(const std::uint8_t in[4 * kAesBlockSize],
                             std::uint8_t out[4 * kAesBlockSize]) const
    noexcept {
  const EncTables& t = enc_tables();
  const std::uint32_t* rk = round_keys_.data();

  std::uint32_t s[4][4];
  for (int b = 0; b < 4; ++b) {
    const std::uint8_t* p = in + kAesBlockSize * b;
    for (int w = 0; w < 4; ++w) {
      s[b][w] = ((std::uint32_t{p[4 * w]} << 24) |
                 (std::uint32_t{p[4 * w + 1]} << 16) |
                 (std::uint32_t{p[4 * w + 2]} << 8) |
                 std::uint32_t{p[4 * w + 3]}) ^
                rk[w];
    }
  }

  std::uint32_t n[4][4];
  for (int round = 1; round < kRounds; ++round) {
    rk += 4;
    for (int b = 0; b < 4; ++b) {
      n[b][0] = t.te0[s[b][0] >> 24] ^ t.te1[(s[b][1] >> 16) & 0xff] ^
                t.te2[(s[b][2] >> 8) & 0xff] ^ t.te3[s[b][3] & 0xff] ^ rk[0];
      n[b][1] = t.te0[s[b][1] >> 24] ^ t.te1[(s[b][2] >> 16) & 0xff] ^
                t.te2[(s[b][3] >> 8) & 0xff] ^ t.te3[s[b][0] & 0xff] ^ rk[1];
      n[b][2] = t.te0[s[b][2] >> 24] ^ t.te1[(s[b][3] >> 16) & 0xff] ^
                t.te2[(s[b][0] >> 8) & 0xff] ^ t.te3[s[b][1] & 0xff] ^ rk[2];
      n[b][3] = t.te0[s[b][3] >> 24] ^ t.te1[(s[b][0] >> 16) & 0xff] ^
                t.te2[(s[b][1] >> 8) & 0xff] ^ t.te3[s[b][2] & 0xff] ^ rk[3];
    }
    for (int b = 0; b < 4; ++b) {
      for (int w = 0; w < 4; ++w) s[b][w] = n[b][w];
    }
  }

  rk += 4;
  for (int b = 0; b < 4; ++b) {
    n[b][0] = ((std::uint32_t{kSbox[s[b][0] >> 24]} << 24) |
               (std::uint32_t{kSbox[(s[b][1] >> 16) & 0xff]} << 16) |
               (std::uint32_t{kSbox[(s[b][2] >> 8) & 0xff]} << 8) |
               std::uint32_t{kSbox[s[b][3] & 0xff]}) ^
              rk[0];
    n[b][1] = ((std::uint32_t{kSbox[s[b][1] >> 24]} << 24) |
               (std::uint32_t{kSbox[(s[b][2] >> 16) & 0xff]} << 16) |
               (std::uint32_t{kSbox[(s[b][3] >> 8) & 0xff]} << 8) |
               std::uint32_t{kSbox[s[b][0] & 0xff]}) ^
              rk[1];
    n[b][2] = ((std::uint32_t{kSbox[s[b][2] >> 24]} << 24) |
               (std::uint32_t{kSbox[(s[b][3] >> 16) & 0xff]} << 16) |
               (std::uint32_t{kSbox[(s[b][0] >> 8) & 0xff]} << 8) |
               std::uint32_t{kSbox[s[b][1] & 0xff]}) ^
              rk[2];
    n[b][3] = ((std::uint32_t{kSbox[s[b][3] >> 24]} << 24) |
               (std::uint32_t{kSbox[(s[b][0] >> 16) & 0xff]} << 16) |
               (std::uint32_t{kSbox[(s[b][1] >> 8) & 0xff]} << 8) |
               std::uint32_t{kSbox[s[b][2] & 0xff]}) ^
              rk[3];
    std::uint8_t* q = out + kAesBlockSize * b;
    for (int w = 0; w < 4; ++w) {
      for (int i = 0; i < 4; ++i) {
        q[4 * w + i] = static_cast<std::uint8_t>(n[b][w] >> (24 - 8 * i));
      }
    }
  }
}

void Aes256::decrypt_block(const std::uint8_t in[kAesBlockSize],
                           std::uint8_t out[kAesBlockSize]) const noexcept {
  std::uint8_t state[4][4];
  for (int i = 0; i < 16; ++i) state[i % 4][i / 4] = in[i];

  auto add_round_key = [&](int round) {
    for (int c = 0; c < 4; ++c) {
      const std::uint32_t w = dec_round_keys_[4 * round + c];
      state[0][c] ^= static_cast<std::uint8_t>(w >> 24);
      state[1][c] ^= static_cast<std::uint8_t>(w >> 16);
      state[2][c] ^= static_cast<std::uint8_t>(w >> 8);
      state[3][c] ^= static_cast<std::uint8_t>(w);
    }
  };

  add_round_key(kRounds);
  for (int round = kRounds - 1; round >= 0; --round) {
    // InvShiftRows
    for (int r = 1; r < 4; ++r) {
      std::uint8_t tmp[4];
      for (int c = 0; c < 4; ++c) tmp[(c + r) % 4] = state[r][c];
      for (int c = 0; c < 4; ++c) state[r][c] = tmp[c];
    }
    // InvSubBytes
    for (auto& row : state)
      for (auto& b : row) b = kInvSbox[b];
    add_round_key(round);
    // InvMixColumns (skipped after the last AddRoundKey)
    if (round != 0) {
      for (int c = 0; c < 4; ++c) {
        const std::uint8_t a0 = state[0][c], a1 = state[1][c],
                           a2 = state[2][c], a3 = state[3][c];
        state[0][c] = static_cast<std::uint8_t>(gf_mul(a0, 0x0e) ^
                                                gf_mul(a1, 0x0b) ^
                                                gf_mul(a2, 0x0d) ^
                                                gf_mul(a3, 0x09));
        state[1][c] = static_cast<std::uint8_t>(gf_mul(a0, 0x09) ^
                                                gf_mul(a1, 0x0e) ^
                                                gf_mul(a2, 0x0b) ^
                                                gf_mul(a3, 0x0d));
        state[2][c] = static_cast<std::uint8_t>(gf_mul(a0, 0x0d) ^
                                                gf_mul(a1, 0x09) ^
                                                gf_mul(a2, 0x0e) ^
                                                gf_mul(a3, 0x0b));
        state[3][c] = static_cast<std::uint8_t>(gf_mul(a0, 0x0b) ^
                                                gf_mul(a1, 0x0d) ^
                                                gf_mul(a2, 0x09) ^
                                                gf_mul(a3, 0x0e));
      }
    }
  }

  for (int i = 0; i < 16; ++i) out[i] = state[i % 4][i / 4];
}

}  // namespace gendpr::crypto
