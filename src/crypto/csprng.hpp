// ChaCha20-based cryptographically secure pseudo-random generator.
//
// Sources: nonces for AEAD records, ephemeral X25519 secrets, simulated CPU
// root keys. `Csprng::system()` seeds from std::random_device; deterministic
// construction exists so integration tests can replay handshakes.
// The ChaCha20 block function is verified against the RFC 8439 §2.3.2 vector.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace gendpr::crypto {

/// ChaCha20 keystream generator used in a fast-key-erasure DRBG construction:
/// each refill produces a block batch, then immediately re-keys from its own
/// output so earlier states cannot be reconstructed.
class Csprng {
 public:
  /// Deterministic instance (tests / simulation reproducibility).
  explicit Csprng(const std::array<std::uint8_t, 32>& seed) noexcept;

  /// Instance seeded from the OS entropy source.
  static Csprng system();

  /// Fills `out` with random bytes.
  void fill(std::span<std::uint8_t> out) noexcept;

  common::Bytes bytes(std::size_t n);

  std::uint64_t next_u64() noexcept;

  template <std::size_t N>
  std::array<std::uint8_t, N> array() noexcept {
    std::array<std::uint8_t, N> out;
    fill(out);
    return out;
  }

 private:
  void refill() noexcept;

  std::array<std::uint8_t, 32> key_{};
  std::uint64_t counter_ = 0;
  std::array<std::uint8_t, 64 * 4> pool_{};
  std::size_t pool_pos_ = 0;
};

/// Raw ChaCha20 block function (RFC 8439): 64-byte keystream block for
/// (key, counter, nonce). Exposed for testing against official vectors.
void chacha20_block(const std::array<std::uint8_t, 32>& key,
                    std::uint32_t counter,
                    const std::array<std::uint8_t, 12>& nonce,
                    std::uint8_t out[64]) noexcept;

}  // namespace gendpr::crypto
