#include "crypto/x25519.hpp"

#include <cstring>

namespace gendpr::crypto {

namespace {

// Field element mod 2^255-19, 16 limbs of 16 bits each held in int64
// (TweetNaCl representation: simple, branch-free, easy to audit).
using Fe = std::int64_t[16];

void fe_copy(Fe out, const Fe a) noexcept {
  for (int i = 0; i < 16; ++i) out[i] = a[i];
}

void fe_zero(Fe out) noexcept {
  for (int i = 0; i < 16; ++i) out[i] = 0;
}

void fe_one(Fe out) noexcept {
  fe_zero(out);
  out[0] = 1;
}

void carry(Fe o) noexcept {
  for (int i = 0; i < 16; ++i) {
    o[i] += (1LL << 16);
    const std::int64_t c = o[i] >> 16;
    o[(i + 1) * (i < 15)] += c - 1 + 37 * (c - 1) * (i == 15);
    o[i] -= c << 16;
  }
}

void fe_add(Fe o, const Fe a, const Fe b) noexcept {
  for (int i = 0; i < 16; ++i) o[i] = a[i] + b[i];
}

void fe_sub(Fe o, const Fe a, const Fe b) noexcept {
  for (int i = 0; i < 16; ++i) o[i] = a[i] - b[i];
}

void fe_mul(Fe o, const Fe a, const Fe b) noexcept {
  std::int64_t t[31];
  for (int i = 0; i < 31; ++i) t[i] = 0;
  for (int i = 0; i < 16; ++i)
    for (int j = 0; j < 16; ++j) t[i + j] += a[i] * b[j];
  for (int i = 0; i < 15; ++i) t[i] += 38 * t[i + 16];
  for (int i = 0; i < 16; ++i) o[i] = t[i];
  carry(o);
  carry(o);
}

void fe_square(Fe o, const Fe a) noexcept {
  fe_mul(o, a, a);
}

void fe_cswap(Fe p, Fe q, std::int64_t bit) noexcept {
  const std::int64_t mask = ~(bit - 1);
  for (int i = 0; i < 16; ++i) {
    const std::int64_t t = mask & (p[i] ^ q[i]);
    p[i] ^= t;
    q[i] ^= t;
  }
}

void fe_invert(Fe o, const Fe a) noexcept {
  Fe c;
  fe_copy(c, a);
  // a^(p-2) via the standard square-and-multiply ladder for 2^255-21.
  for (int i = 253; i >= 0; --i) {
    fe_square(c, c);
    if (i != 2 && i != 4) fe_mul(c, c, a);
  }
  fe_copy(o, c);
}

void fe_pack(std::uint8_t* out, const Fe n) noexcept {
  Fe m, t;
  fe_copy(t, n);
  carry(t);
  carry(t);
  carry(t);
  for (int round = 0; round < 2; ++round) {
    m[0] = t[0] - 0xffed;
    for (int i = 1; i < 15; ++i) {
      m[i] = t[i] - 0xffff - ((m[i - 1] >> 16) & 1);
      m[i - 1] &= 0xffff;
    }
    m[15] = t[15] - 0x7fff - ((m[14] >> 16) & 1);
    const std::int64_t borrow = (m[15] >> 16) & 1;
    m[14] &= 0xffff;
    fe_cswap(t, m, 1 - borrow);
  }
  for (int i = 0; i < 16; ++i) {
    out[2 * i] = static_cast<std::uint8_t>(t[i] & 0xff);
    out[2 * i + 1] = static_cast<std::uint8_t>(t[i] >> 8);
  }
}

void fe_unpack(Fe out, const std::uint8_t* in) noexcept {
  for (int i = 0; i < 16; ++i) {
    out[i] = in[2 * i] + (static_cast<std::int64_t>(in[2 * i + 1]) << 8);
  }
  out[15] &= 0x7fff;
}

constexpr std::int64_t kA24 = 121665;  // (486662 - 2) / 4

}  // namespace

X25519Key x25519(const X25519Key& scalar, const X25519Key& point) noexcept {
  std::uint8_t clamped[32];
  std::memcpy(clamped, scalar.data(), 32);
  clamped[0] &= 248;
  clamped[31] &= 127;
  clamped[31] |= 64;

  Fe x;
  fe_unpack(x, point.data());

  Fe a, b, c, d, e, f;
  fe_one(a);
  fe_copy(b, x);
  fe_zero(c);
  fe_one(d);

  for (int i = 254; i >= 0; --i) {
    const std::int64_t bit = (clamped[i >> 3] >> (i & 7)) & 1;
    fe_cswap(a, b, bit);
    fe_cswap(c, d, bit);
    fe_add(e, a, c);
    fe_sub(a, a, c);
    fe_add(c, b, d);
    fe_sub(b, b, d);
    fe_square(d, e);
    fe_square(f, a);
    fe_mul(a, c, a);
    fe_mul(c, b, e);
    fe_add(e, a, c);
    fe_sub(a, a, c);
    fe_square(b, a);
    fe_sub(c, d, f);
    Fe a24_term;
    for (int j = 0; j < 16; ++j) a24_term[j] = 0;
    a24_term[0] = kA24;
    fe_mul(a, c, a24_term);
    fe_add(a, a, d);
    fe_mul(c, c, a);
    fe_mul(a, d, f);
    fe_mul(d, b, x);
    fe_square(b, e);
    fe_cswap(a, b, bit);
    fe_cswap(c, d, bit);
  }

  Fe inv_c;
  fe_invert(inv_c, c);
  fe_mul(a, a, inv_c);

  X25519Key out;
  fe_pack(out.data(), a);
  return out;
}

X25519Key x25519_base(const X25519Key& scalar) noexcept {
  X25519Key base{};
  base[0] = 9;
  return x25519(scalar, base);
}

X25519KeyPair x25519_keypair(const X25519Key& secret) noexcept {
  return X25519KeyPair{secret, x25519_base(secret)};
}

}  // namespace gendpr::crypto
