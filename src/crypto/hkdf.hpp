// HKDF with SHA-256 (RFC 5869).
//
// Key-schedule workhorse: the attested handshake (tee/secure_channel) derives
// per-direction AEAD keys from the X25519 shared secret and the handshake
// transcript; the sealing service derives per-measurement sealing keys from
// the simulated CPU root key. Verified against RFC 5869 appendix A vectors.
#pragma once

#include "common/bytes.hpp"

namespace gendpr::crypto {

/// HKDF-Extract: PRK = HMAC(salt, ikm).
common::Bytes hkdf_extract(common::BytesView salt, common::BytesView ikm);

/// HKDF-Expand: OKM of `length` bytes (length <= 255*32).
/// Throws std::invalid_argument if length is out of range.
common::Bytes hkdf_expand(common::BytesView prk, common::BytesView info,
                          std::size_t length);

/// Extract-then-expand convenience.
common::Bytes hkdf(common::BytesView salt, common::BytesView ikm,
                   common::BytesView info, std::size_t length);

}  // namespace gendpr::crypto
