#include "crypto/csprng.hpp"

#include <cstring>
#include <random>

namespace gendpr::crypto {

namespace {

std::uint32_t rotl32(std::uint32_t x, int n) noexcept {
  return (x << n) | (x >> (32 - n));
}

void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                   std::uint32_t& d) noexcept {
  a += b;
  d = rotl32(d ^ a, 16);
  c += d;
  b = rotl32(b ^ c, 12);
  a += b;
  d = rotl32(d ^ a, 8);
  c += d;
  b = rotl32(b ^ c, 7);
}

std::uint32_t load_le32(const std::uint8_t* p) noexcept {
  return std::uint32_t{p[0]} | (std::uint32_t{p[1]} << 8) |
         (std::uint32_t{p[2]} << 16) | (std::uint32_t{p[3]} << 24);
}

void store_le32(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

}  // namespace

void chacha20_block(const std::array<std::uint8_t, 32>& key,
                    std::uint32_t counter,
                    const std::array<std::uint8_t, 12>& nonce,
                    std::uint8_t out[64]) noexcept {
  std::uint32_t state[16];
  state[0] = 0x61707865;
  state[1] = 0x3320646e;
  state[2] = 0x79622d32;
  state[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) state[4 + i] = load_le32(key.data() + 4 * i);
  state[12] = counter;
  for (int i = 0; i < 3; ++i) state[13 + i] = load_le32(nonce.data() + 4 * i);

  std::uint32_t working[16];
  std::memcpy(working, state, sizeof(state));
  for (int round = 0; round < 10; ++round) {
    quarter_round(working[0], working[4], working[8], working[12]);
    quarter_round(working[1], working[5], working[9], working[13]);
    quarter_round(working[2], working[6], working[10], working[14]);
    quarter_round(working[3], working[7], working[11], working[15]);
    quarter_round(working[0], working[5], working[10], working[15]);
    quarter_round(working[1], working[6], working[11], working[12]);
    quarter_round(working[2], working[7], working[8], working[13]);
    quarter_round(working[3], working[4], working[9], working[14]);
  }
  for (int i = 0; i < 16; ++i) {
    store_le32(out + 4 * i, working[i] + state[i]);
  }
}

Csprng::Csprng(const std::array<std::uint8_t, 32>& seed) noexcept
    : key_(seed), pool_pos_(pool_.size()) {}

Csprng Csprng::system() {
  std::random_device rd;
  std::array<std::uint8_t, 32> seed;
  for (std::size_t i = 0; i < seed.size(); i += 4) {
    const std::uint32_t word = rd();
    store_le32(seed.data() + i, word);
  }
  return Csprng(seed);
}

void Csprng::refill() noexcept {
  std::array<std::uint8_t, 12> nonce{};
  for (int i = 0; i < 8; ++i) {
    nonce[i] = static_cast<std::uint8_t>(counter_ >> (8 * i));
  }
  ++counter_;
  for (std::size_t block = 0; block < pool_.size() / 64; ++block) {
    chacha20_block(key_, static_cast<std::uint32_t>(block), nonce,
                   pool_.data() + 64 * block);
  }
  // Fast key erasure: re-key from the first 32 bytes of the batch and never
  // hand those bytes out.
  std::memcpy(key_.data(), pool_.data(), 32);
  pool_pos_ = 32;
}

void Csprng::fill(std::span<std::uint8_t> out) noexcept {
  std::size_t offset = 0;
  while (offset < out.size()) {
    if (pool_pos_ == pool_.size()) refill();
    const std::size_t take =
        std::min(out.size() - offset, pool_.size() - pool_pos_);
    std::memcpy(out.data() + offset, pool_.data() + pool_pos_, take);
    pool_pos_ += take;
    offset += take;
  }
}

common::Bytes Csprng::bytes(std::size_t n) {
  common::Bytes out(n);
  fill(out);
  return out;
}

std::uint64_t Csprng::next_u64() noexcept {
  std::array<std::uint8_t, 8> buf;
  fill(buf);
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | buf[i];
  return v;
}

}  // namespace gendpr::crypto
