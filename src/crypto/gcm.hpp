// AES-256-GCM authenticated encryption (NIST SP 800-38D).
//
// All data leaving an enclave — sealed blobs and secure-channel records — is
// protected with this AEAD, matching the paper's "we encrypt all exchanged
// data using AES 256" (§7). Verified against NIST CAVP gcmEncryptExtIV256
// vectors; tamper-detection is property-tested over random bit flips.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "common/bytes.hpp"
#include "common/error.hpp"

namespace gendpr::crypto {

inline constexpr std::size_t kGcmNonceSize = 12;
inline constexpr std::size_t kGcmTagSize = 16;

using GcmNonce = std::array<std::uint8_t, kGcmNonceSize>;

/// Encrypts `plaintext` with AAD `aad`; returns ciphertext || tag.
common::Bytes gcm_seal(common::BytesView key, const GcmNonce& nonce,
                       common::BytesView aad, common::BytesView plaintext);

/// Opens ciphertext || tag. Returns Errc::decrypt_failed on any mismatch
/// (wrong key, wrong nonce, tampered ciphertext/AAD, truncation).
common::Result<common::Bytes> gcm_open(common::BytesView key,
                                       const GcmNonce& nonce,
                                       common::BytesView aad,
                                       common::BytesView sealed);

/// AEAD overhead in bytes added by gcm_seal (the tag; nonces are carried
/// separately by callers). Exposed for the bandwidth accounting of §7.1.
inline constexpr std::size_t gcm_overhead() noexcept { return kGcmTagSize; }

}  // namespace gendpr::crypto
