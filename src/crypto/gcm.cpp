// Historical one-shot GCM entry points, kept as thin wrappers over the
// AEAD engine (crypto/aead.hpp). Hot paths — SecureChannel, the sealing
// service — hold a GcmContext per key instead of paying the AES key
// expansion and GHASH table build on every record; these wrappers remain
// for one-off callers and tests.
#include "crypto/gcm.hpp"

#include "crypto/aead.hpp"

namespace gendpr::crypto {

common::Bytes gcm_seal(common::BytesView key, const GcmNonce& nonce,
                       common::BytesView aad, common::BytesView plaintext) {
  return GcmContext(key).seal(nonce, aad, plaintext);
}

common::Result<common::Bytes> gcm_open(common::BytesView key,
                                       const GcmNonce& nonce,
                                       common::BytesView aad,
                                       common::BytesView sealed) {
  return GcmContext(key).open(nonce, aad, sealed);
}

}  // namespace gendpr::crypto
