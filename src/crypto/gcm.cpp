#include "crypto/gcm.hpp"

#include <cstring>

#include "crypto/aes256.hpp"

namespace gendpr::crypto {

namespace {

struct U128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
};

U128 load_u128(const std::uint8_t* p) noexcept {
  U128 x;
  for (int i = 0; i < 8; ++i) x.hi = (x.hi << 8) | p[i];
  for (int i = 8; i < 16; ++i) x.lo = (x.lo << 8) | p[i];
  return x;
}

void store_u128(const U128& x, std::uint8_t* p) noexcept {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(x.hi >> (56 - 8 * i));
  for (int i = 0; i < 8; ++i) p[8 + i] = static_cast<std::uint8_t>(x.lo >> (56 - 8 * i));
}

/// 4-bit-table GHASH (Shoup's method, as in mbedTLS): 16-entry tables of
/// nibble*H products plus the reduction constants for a 4-bit right shift.
/// ~8x faster than the bit-serial loop; validated against the NIST CAVP
/// vectors in tests/crypto/aes_gcm_test.cpp.
constexpr std::uint16_t kLast4[16] = {
    0x0000, 0x1c20, 0x3840, 0x2460, 0x7080, 0x6ca0, 0x48c0, 0x54e0,
    0xe100, 0xfd20, 0xd940, 0xc560, 0x9180, 0x8da0, 0xa9c0, 0xb5e0};

struct GhashKey {
  std::uint64_t hl[16];
  std::uint64_t hh[16];

  explicit GhashKey(const U128& h) noexcept {
    std::uint64_t vh = h.hi;
    std::uint64_t vl = h.lo;
    hl[8] = vl;
    hh[8] = vh;
    for (int i = 4; i > 0; i >>= 1) {
      const std::uint32_t t =
          static_cast<std::uint32_t>(vl & 1) * 0xe1000000u;
      vl = (vh << 63) | (vl >> 1);
      vh = (vh >> 1) ^ (static_cast<std::uint64_t>(t) << 32);
      hl[i] = vl;
      hh[i] = vh;
    }
    hl[0] = 0;
    hh[0] = 0;
    for (int i = 2; i <= 8; i *= 2) {
      for (int j = 1; j < i; ++j) {
        hh[i + j] = hh[i] ^ hh[j];
        hl[i + j] = hl[i] ^ hl[j];
      }
    }
  }

  U128 mul(const U128& x) const noexcept {
    std::uint8_t bytes[16];
    store_u128(x, bytes);
    std::uint8_t lo = bytes[15] & 0xf;
    std::uint64_t zh = hh[lo];
    std::uint64_t zl = hl[lo];
    for (int i = 15; i >= 0; --i) {
      lo = bytes[i] & 0xf;
      const std::uint8_t hi_nibble = bytes[i] >> 4;
      if (i != 15) {
        std::uint8_t rem = static_cast<std::uint8_t>(zl & 0xf);
        zl = (zh << 60) | (zl >> 4);
        zh = (zh >> 4) ^ (static_cast<std::uint64_t>(kLast4[rem]) << 48);
        zh ^= hh[lo];
        zl ^= hl[lo];
      }
      std::uint8_t rem = static_cast<std::uint8_t>(zl & 0xf);
      zl = (zh << 60) | (zl >> 4);
      zh = (zh >> 4) ^ (static_cast<std::uint64_t>(kLast4[rem]) << 48);
      zh ^= hh[hi_nibble];
      zl ^= hl[hi_nibble];
    }
    return U128{zh, zl};
  }
};

class Ghash {
 public:
  explicit Ghash(const U128& h) noexcept : h_(h) {}

  void update(common::BytesView data) noexcept {
    std::size_t offset = 0;
    while (offset < data.size()) {
      const std::size_t take =
          std::min<std::size_t>(16 - buffer_len_, data.size() - offset);
      std::memcpy(buffer_ + buffer_len_, data.data() + offset, take);
      buffer_len_ += take;
      offset += take;
      if (buffer_len_ == 16) flush_block();
    }
  }

  /// Pads the current partial block with zeros (block boundary between AAD
  /// and ciphertext sections).
  void pad_to_block() noexcept {
    if (buffer_len_ > 0) {
      std::memset(buffer_ + buffer_len_, 0, 16 - buffer_len_);
      buffer_len_ = 16;
      flush_block();
    }
  }

  U128 finish(std::uint64_t aad_bits, std::uint64_t ct_bits) noexcept {
    pad_to_block();
    std::uint8_t lengths[16];
    for (int i = 0; i < 8; ++i)
      lengths[i] = static_cast<std::uint8_t>(aad_bits >> (56 - 8 * i));
    for (int i = 0; i < 8; ++i)
      lengths[8 + i] = static_cast<std::uint8_t>(ct_bits >> (56 - 8 * i));
    update(common::BytesView(lengths, 16));
    return y_;
  }

 private:
  void flush_block() noexcept {
    const U128 block = load_u128(buffer_);
    y_.hi ^= block.hi;
    y_.lo ^= block.lo;
    y_ = h_.mul(y_);
    buffer_len_ = 0;
  }

  GhashKey h_;
  U128 y_;
  std::uint8_t buffer_[16] = {};
  std::size_t buffer_len_ = 0;
};

/// Encrypts/decrypts with AES-CTR using the GCM counter layout (J0 + i).
void ctr_transform(const Aes256& aes, const GcmNonce& nonce,
                   common::BytesView in, std::uint8_t* out) {
  std::uint8_t counter_block[16];
  std::memcpy(counter_block, nonce.data(), kGcmNonceSize);
  std::uint32_t counter = 2;  // counter 1 is reserved for the tag mask
  std::size_t offset = 0;
  std::uint8_t keystream[16];
  while (offset < in.size()) {
    counter_block[12] = static_cast<std::uint8_t>(counter >> 24);
    counter_block[13] = static_cast<std::uint8_t>(counter >> 16);
    counter_block[14] = static_cast<std::uint8_t>(counter >> 8);
    counter_block[15] = static_cast<std::uint8_t>(counter);
    aes.encrypt_block(counter_block, keystream);
    const std::size_t take = std::min<std::size_t>(16, in.size() - offset);
    for (std::size_t i = 0; i < take; ++i) {
      out[offset + i] = static_cast<std::uint8_t>(in[offset + i] ^ keystream[i]);
    }
    offset += take;
    ++counter;
  }
}

void compute_tag(const Aes256& aes, const GcmNonce& nonce,
                 common::BytesView aad, common::BytesView ciphertext,
                 std::uint8_t tag[kGcmTagSize]) {
  // H = E_K(0^128)
  std::uint8_t zero_block[16] = {};
  std::uint8_t h_bytes[16];
  aes.encrypt_block(zero_block, h_bytes);
  const U128 h = load_u128(h_bytes);

  Ghash ghash(h);
  ghash.update(aad);
  ghash.pad_to_block();
  ghash.update(ciphertext);
  const U128 s = ghash.finish(aad.size() * 8, ciphertext.size() * 8);

  // Tag = GHASH xor E_K(J0), J0 = nonce || 0x00000001 for 96-bit nonces.
  std::uint8_t j0[16];
  std::memcpy(j0, nonce.data(), kGcmNonceSize);
  j0[12] = 0;
  j0[13] = 0;
  j0[14] = 0;
  j0[15] = 1;
  std::uint8_t mask[16];
  aes.encrypt_block(j0, mask);

  std::uint8_t s_bytes[16];
  store_u128(s, s_bytes);
  for (int i = 0; i < 16; ++i) {
    tag[i] = static_cast<std::uint8_t>(s_bytes[i] ^ mask[i]);
  }
}

}  // namespace

common::Bytes gcm_seal(common::BytesView key, const GcmNonce& nonce,
                       common::BytesView aad, common::BytesView plaintext) {
  const Aes256 aes(key);
  common::Bytes out(plaintext.size() + kGcmTagSize);
  ctr_transform(aes, nonce, plaintext, out.data());
  compute_tag(aes, nonce, aad,
              common::BytesView(out.data(), plaintext.size()),
              out.data() + plaintext.size());
  return out;
}

common::Result<common::Bytes> gcm_open(common::BytesView key,
                                       const GcmNonce& nonce,
                                       common::BytesView aad,
                                       common::BytesView sealed) {
  if (sealed.size() < kGcmTagSize) {
    return common::make_error(common::Errc::decrypt_failed,
                              "gcm_open: input shorter than tag");
  }
  const Aes256 aes(key);
  const std::size_t ct_len = sealed.size() - kGcmTagSize;
  const common::BytesView ciphertext(sealed.data(), ct_len);
  const common::BytesView tag(sealed.data() + ct_len, kGcmTagSize);

  std::uint8_t expected_tag[kGcmTagSize];
  compute_tag(aes, nonce, aad, ciphertext, expected_tag);
  if (!common::ct_equal(common::BytesView(expected_tag, kGcmTagSize), tag)) {
    return common::make_error(common::Errc::decrypt_failed,
                              "gcm_open: authentication tag mismatch");
  }

  common::Bytes plaintext(ct_len);
  ctr_transform(aes, nonce, ciphertext, plaintext.data());
  return plaintext;
}

}  // namespace gendpr::crypto
