// X25519 Diffie-Hellman over Curve25519 (RFC 7748).
//
// Key agreement for the mutually-attested secure channels between enclaves
// (tee/secure_channel): each side contributes an ephemeral X25519 key; the
// shared secret feeds HKDF. Verified against RFC 7748 §5.2 and §6.1 vectors.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace gendpr::crypto {

inline constexpr std::size_t kX25519KeySize = 32;

using X25519Key = std::array<std::uint8_t, kX25519KeySize>;

/// scalar * point (general scalar multiplication). The scalar is clamped per
/// RFC 7748 before use.
X25519Key x25519(const X25519Key& scalar, const X25519Key& point) noexcept;

/// scalar * base point (public key derivation).
X25519Key x25519_base(const X25519Key& scalar) noexcept;

struct X25519KeyPair {
  X25519Key secret;
  X25519Key public_key;
};

/// Derives the keypair for a given 32-byte secret.
X25519KeyPair x25519_keypair(const X25519Key& secret) noexcept;

}  // namespace gendpr::crypto
