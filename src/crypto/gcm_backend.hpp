// Internal contract between the AEAD engine front-end (gcm_context.cpp) and
// the x86-64 kernel translation unit (gcm_pclmul.cpp).
//
// Not part of the public crypto API: callers go through crypto/aead.hpp. The
// kernels take the precomputed per-key material a GcmContext owns (FIPS
// byte-order round keys, GHASH key H) so they run with zero per-record
// setup. They are compiled with -maes/-mpclmul on x86-64 only and must be
// called only when `aead_backend_available(AeadBackend::native)` is true —
// the dispatcher, not the kernels, checks CPUID.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "crypto/aes256.hpp"
#include "crypto/gcm.hpp"

namespace gendpr::crypto::detail {

/// True when the AES-NI + PCLMULQDQ kernels are compiled into this binary
/// (x86-64 build). Runtime CPU support is checked separately via CPUID.
bool native_gcm_compiled() noexcept;

/// GCM CTR keystream XOR (counter starts at 2; 1 is the tag mask) over
/// `len` bytes of `in` into `out`, eight blocks in flight per iteration.
/// `schedule` holds the 240-byte AES-256 round-key schedule.
void native_ctr(const std::uint8_t* schedule, const GcmNonce& nonce,
                const std::uint8_t* in, std::size_t len,
                std::uint8_t* out) noexcept;

/// GHASH over aad || ciphertext (each zero-padded to a block boundary) plus
/// the lengths block, masked with E_K(J0): the full GCM tag computation.
void native_ghash_tag(const std::uint8_t* schedule,
                      const std::uint8_t h_bytes[kAesBlockSize],
                      const GcmNonce& nonce, common::BytesView aad,
                      common::BytesView ciphertext,
                      std::uint8_t tag[kGcmTagSize]) noexcept;

}  // namespace gendpr::crypto::detail
