#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace gendpr::obs {

using common::Errc;
using common::make_error;
using common::Result;

bool JsonValue::is_null() const noexcept {
  return std::holds_alternative<std::nullptr_t>(storage_);
}
bool JsonValue::is_bool() const noexcept {
  return std::holds_alternative<bool>(storage_);
}
bool JsonValue::is_number() const noexcept {
  return std::holds_alternative<double>(storage_);
}
bool JsonValue::is_string() const noexcept {
  return std::holds_alternative<std::string>(storage_);
}
bool JsonValue::is_array() const noexcept {
  return std::holds_alternative<Array>(storage_);
}
bool JsonValue::is_object() const noexcept {
  return std::holds_alternative<Object>(storage_);
}

void JsonValue::set(std::string_view key, JsonValue value) {
  if (!is_object()) storage_ = Object{};
  for (auto& [existing, slot] : std::get<Object>(storage_)) {
    if (existing == key) {
      slot = std::move(value);
      return;
    }
  }
  std::get<Object>(storage_).emplace_back(std::string(key), std::move(value));
}

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (!is_object()) return nullptr;
  for (const auto& [existing, slot] : std::get<Object>(storage_)) {
    if (existing == key) return &slot;
  }
  return nullptr;
}

void JsonValue::push_back(JsonValue value) {
  if (!is_array()) storage_ = Array{};
  std::get<Array>(storage_).push_back(std::move(value));
}

namespace {

void append_escaped(std::string& out, const std::string& text) {
  out += '"';
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "null";  // JSON has no inf/nan; null keeps parsers alive
    return;
  }
  // Integral values (counters, byte counts) print without a fraction.
  if (value == std::floor(value) && std::fabs(value) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
    out += buf;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out += buf;
}

}  // namespace

static void dump_value(const JsonValue& value, std::string& out, int indent,
                       int depth) {
  const auto newline_indent = [&](int levels) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * levels), ' ');
  };
  if (value.is_null()) {
    out += "null";
  } else if (value.is_bool()) {
    out += value.as_bool() ? "true" : "false";
  } else if (value.is_number()) {
    append_number(out, value.as_number());
  } else if (value.is_string()) {
    append_escaped(out, value.as_string());
  } else if (value.is_array()) {
    const auto& items = value.as_array();
    if (items.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (i != 0) out += ',';
      newline_indent(depth + 1);
      dump_value(items[i], out, indent, depth + 1);
    }
    newline_indent(depth);
    out += ']';
  } else {
    const auto& fields = value.as_object();
    if (fields.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    for (std::size_t i = 0; i < fields.size(); ++i) {
      if (i != 0) out += ',';
      newline_indent(depth + 1);
      append_escaped(out, fields[i].first);
      out += indent > 0 ? ": " : ":";
      dump_value(fields[i].second, out, indent, depth + 1);
    }
    newline_indent(depth);
    out += '}';
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_value(*this, out, indent, 0);
  return out;
}

namespace {

/// Recursive-descent parser over a string_view cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> run() {
    auto value = parse_value();
    if (!value.ok()) return value;
    skip_whitespace();
    if (pos_ != text_.size()) {
      return fail("trailing characters after JSON document");
    }
    return value;
  }

 private:
  common::Error fail(const std::string& what) const {
    return make_error(Errc::bad_message,
                      "json: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  Result<JsonValue> parse_value() {
    skip_whitespace();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      auto text = parse_string();
      if (!text.ok()) return text.error();
      return JsonValue(std::move(text).take());
    }
    if (consume_literal("true")) return JsonValue(true);
    if (consume_literal("false")) return JsonValue(false);
    if (consume_literal("null")) return JsonValue(nullptr);
    return parse_number();
  }

  Result<JsonValue> parse_object() {
    ++pos_;  // '{'
    JsonValue::Object fields;
    skip_whitespace();
    if (consume('}')) return JsonValue(std::move(fields));
    for (;;) {
      skip_whitespace();
      auto key = parse_string();
      if (!key.ok()) return key.error();
      skip_whitespace();
      if (!consume(':')) return fail("expected ':' in object");
      auto value = parse_value();
      if (!value.ok()) return value;
      fields.emplace_back(std::move(key).take(), std::move(value).take());
      skip_whitespace();
      if (consume(',')) continue;
      if (consume('}')) return JsonValue(std::move(fields));
      return fail("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> parse_array() {
    ++pos_;  // '['
    JsonValue::Array items;
    skip_whitespace();
    if (consume(']')) return JsonValue(std::move(items));
    for (;;) {
      auto value = parse_value();
      if (!value.ok()) return value;
      items.push_back(std::move(value).take());
      skip_whitespace();
      if (consume(',')) continue;
      if (consume(']')) return JsonValue(std::move(items));
      return fail("expected ',' or ']' in array");
    }
  }

  Result<std::string> parse_string() {
    if (!consume('"')) return fail("expected string");
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad \\u escape digit");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // produced by our writer; lone surrogates pass through as-is).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return fail("unknown escape character");
      }
    }
    return fail("unterminated string");
  }

  Result<JsonValue> parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return fail("malformed number");
    return JsonValue(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> JsonValue::parse(std::string_view text) {
  return Parser(text).run();
}

}  // namespace gendpr::obs
