// Minimal JSON document model for the observability layer.
//
// Run reports, metric snapshots, and trace dumps all serialize through this
// one value type so every telemetry artifact shares a single, dependency-free
// code path. The writer emits deterministic output (object keys keep their
// insertion order); the parser accepts standard JSON and exists so tests can
// round-trip reports and so tools can re-ingest artifacts the CI uploads.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "common/error.hpp"

namespace gendpr::obs {

class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  /// Insertion-ordered object: report sections appear in the order they are
  /// written, which keeps diffs between runs readable.
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() : storage_(nullptr) {}
  JsonValue(std::nullptr_t) : storage_(nullptr) {}  // NOLINT
  JsonValue(bool value) : storage_(value) {}        // NOLINT
  JsonValue(double value) : storage_(value) {}      // NOLINT
  JsonValue(std::int64_t value)                     // NOLINT
      : storage_(static_cast<double>(value)) {}
  JsonValue(std::uint64_t value)                    // NOLINT
      : storage_(static_cast<double>(value)) {}
  JsonValue(int value) : storage_(static_cast<double>(value)) {}  // NOLINT
  JsonValue(unsigned value)                                       // NOLINT
      : storage_(static_cast<double>(value)) {}
  JsonValue(std::string value) : storage_(std::move(value)) {}    // NOLINT
  JsonValue(const char* value) : storage_(std::string(value)) {}  // NOLINT
  JsonValue(Array value) : storage_(std::move(value)) {}          // NOLINT
  JsonValue(Object value) : storage_(std::move(value)) {}         // NOLINT

  static JsonValue array() { return JsonValue(Array{}); }
  static JsonValue object() { return JsonValue(Object{}); }

  bool is_null() const noexcept;
  bool is_bool() const noexcept;
  bool is_number() const noexcept;
  bool is_string() const noexcept;
  bool is_array() const noexcept;
  bool is_object() const noexcept;

  bool as_bool() const { return std::get<bool>(storage_); }
  double as_number() const { return std::get<double>(storage_); }
  const std::string& as_string() const { return std::get<std::string>(storage_); }
  const Array& as_array() const { return std::get<Array>(storage_); }
  Array& as_array() { return std::get<Array>(storage_); }
  const Object& as_object() const { return std::get<Object>(storage_); }
  Object& as_object() { return std::get<Object>(storage_); }

  /// Object helpers. set() replaces an existing key or appends a new one;
  /// find() returns nullptr when the key is absent (or this is not an
  /// object), so lookups chain without exceptions.
  void set(std::string_view key, JsonValue value);
  const JsonValue* find(std::string_view key) const noexcept;

  /// Array helper.
  void push_back(JsonValue value);

  /// Serializes the document. indent 0 produces compact single-line output;
  /// a positive indent pretty-prints with that many spaces per level.
  std::string dump(int indent = 0) const;

  /// Parses a complete JSON document (trailing garbage is an error).
  static common::Result<JsonValue> parse(std::string_view text);

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object>
      storage_;
};

}  // namespace gendpr::obs
