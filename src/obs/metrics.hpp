// Process-local metrics registry: named counters, gauges, and histograms.
//
// The federation accumulates its per-run resource accounting here — request
// counts, per-link byte totals exported from the traffic meters, EPC
// high-water marks, thread-pool task statistics — so a finished study can be
// serialized into one run report instead of scraping numbers from the owners
// of a dozen short-lived meters. Thread-safe: protocol threads, transport
// reader threads, and pool workers all record concurrently. Zero external
// dependencies by design (the paper's evaluation must be reproducible from a
// bare toolchain).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"

namespace gendpr::obs {

class MetricsRegistry {
 public:
  /// Monotonic counter: adds `delta` (creating the counter at zero first).
  void add_counter(std::string_view name, std::uint64_t delta = 1);
  /// Current counter value; 0 for a counter never touched.
  std::uint64_t counter(std::string_view name) const;

  /// Last-write-wins gauge.
  void set_gauge(std::string_view name, double value);
  /// Keeps the maximum of the current and new value (high-water marks).
  void max_gauge(std::string_view name, double value);
  std::optional<double> gauge(std::string_view name) const;

  /// Last-write-wins string label (e.g. "crypto.backend" -> "native").
  void set_label(std::string_view name, std::string_view value);
  std::optional<std::string> label(std::string_view name) const;

  /// Records one sample into a histogram (creating it on first use).
  void observe(std::string_view name, double value);

  struct HistogramStats {
    std::uint64_t count = 0;
    double sum = 0;
    double min = 0;
    double max = 0;
    double p50 = 0;
    double p90 = 0;
    double p99 = 0;
  };
  std::optional<HistogramStats> histogram(std::string_view name) const;

  /// Snapshot of every instrument: {"counters": {...}, "gauges": {...},
  /// "labels": {...}, "histograms": {name: stats}}.
  JsonValue to_json() const;

  void clear();

 private:
  static HistogramStats summarize(const std::vector<double>& samples);

  mutable std::mutex mutex_;
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, std::string, std::less<>> labels_;
  std::map<std::string, std::vector<double>, std::less<>> histograms_;
};

}  // namespace gendpr::obs
