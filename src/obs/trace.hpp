// Hierarchical phase tracing over the steady clock.
//
// A TraceRecorder collects spans — named, nested intervals — from every layer
// of a federation run: the runner opens the root "study" span, the leader
// opens one span per protocol step, and the coordinator opens one child span
// per collusion combination inside each analysis phase (study → phase →
// combination). Spans may begin and end on different threads than their
// parents (the LR phase evaluates combinations on a pool), so the recorder is
// thread-safe and parents are passed explicitly rather than inferred from
// thread-local state.
#pragma once

#include <chrono>
#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "obs/json.hpp"

namespace gendpr::obs {

using SpanId = std::size_t;
inline constexpr SpanId kNoSpan = static_cast<SpanId>(-1);

struct Span {
  SpanId id = kNoSpan;
  SpanId parent = kNoSpan;
  std::string name;
  /// Start offset from the recorder's construction, in milliseconds.
  double start_ms = 0;
  /// Negative while the span is still open.
  double duration_ms = -1;
};

class TraceRecorder {
 public:
  TraceRecorder() : epoch_(Clock::now()) {}

  /// Opens a span under `parent` (kNoSpan = top level). Returns its id.
  SpanId begin_span(std::string name, SpanId parent = kNoSpan);

  /// Closes the span. Closing an already-closed or unknown id is a no-op.
  void end_span(SpanId id);

  /// Snapshot of all spans recorded so far.
  std::vector<Span> spans() const;

  std::size_t span_count() const;

  /// Flat array of {"id","parent","name","start_ms","duration_ms"}; parent
  /// is null for top-level spans. Open spans carry a null duration.
  JsonValue to_json() const;

  /// Inverse of to_json (for tests and report re-ingestion).
  static common::Result<std::vector<Span>> spans_from_json(
      const JsonValue& json);

 private:
  using Clock = std::chrono::steady_clock;

  double since_epoch_ms() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - epoch_)
        .count();
  }

  Clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<Span> spans_;
};

/// RAII span: ends on destruction. Tolerates a null recorder so call sites
/// can stay unconditional when observability is not attached.
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(TraceRecorder* recorder, std::string name, SpanId parent = kNoSpan)
      : recorder_(recorder),
        id_(recorder == nullptr ? kNoSpan
                                : recorder->begin_span(std::move(name), parent)) {}
  ~ScopedSpan() { end(); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ScopedSpan(ScopedSpan&& other) noexcept
      : recorder_(other.recorder_), id_(other.id_) {
    other.recorder_ = nullptr;
    other.id_ = kNoSpan;
  }
  ScopedSpan& operator=(ScopedSpan&& other) noexcept {
    if (this != &other) {
      end();
      recorder_ = other.recorder_;
      id_ = other.id_;
      other.recorder_ = nullptr;
      other.id_ = kNoSpan;
    }
    return *this;
  }

  /// Id to parent child spans under; kNoSpan when no recorder is attached.
  SpanId id() const noexcept { return id_; }

  void end() {
    if (recorder_ != nullptr && id_ != kNoSpan) recorder_->end_span(id_);
    recorder_ = nullptr;
    id_ = kNoSpan;
  }

 private:
  TraceRecorder* recorder_ = nullptr;
  SpanId id_ = kNoSpan;
};

}  // namespace gendpr::obs
