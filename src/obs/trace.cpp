#include "obs/trace.hpp"

namespace gendpr::obs {

using common::Errc;
using common::make_error;
using common::Result;

SpanId TraceRecorder::begin_span(std::string name, SpanId parent) {
  const double start = since_epoch_ms();
  std::lock_guard<std::mutex> lock(mutex_);
  Span span;
  span.id = spans_.size();
  span.parent = parent < spans_.size() ? parent : kNoSpan;
  span.name = std::move(name);
  span.start_ms = start;
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void TraceRecorder::end_span(SpanId id) {
  const double now = since_epoch_ms();
  std::lock_guard<std::mutex> lock(mutex_);
  if (id >= spans_.size()) return;
  Span& span = spans_[id];
  if (span.duration_ms >= 0) return;  // already closed
  span.duration_ms = now - span.start_ms;
}

std::vector<Span> TraceRecorder::spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

std::size_t TraceRecorder::span_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_.size();
}

JsonValue TraceRecorder::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  JsonValue out = JsonValue::array();
  for (const Span& span : spans_) {
    JsonValue entry = JsonValue::object();
    entry.set("id", static_cast<std::uint64_t>(span.id));
    entry.set("parent", span.parent == kNoSpan
                            ? JsonValue(nullptr)
                            : JsonValue(static_cast<std::uint64_t>(span.parent)));
    entry.set("name", span.name);
    entry.set("start_ms", span.start_ms);
    entry.set("duration_ms", span.duration_ms < 0 ? JsonValue(nullptr)
                                                  : JsonValue(span.duration_ms));
    out.push_back(std::move(entry));
  }
  return out;
}

Result<std::vector<Span>> TraceRecorder::spans_from_json(
    const JsonValue& json) {
  if (!json.is_array()) {
    return make_error(Errc::bad_message, "trace: expected a span array");
  }
  std::vector<Span> spans;
  spans.reserve(json.as_array().size());
  for (const JsonValue& entry : json.as_array()) {
    const JsonValue* id = entry.find("id");
    const JsonValue* parent = entry.find("parent");
    const JsonValue* name = entry.find("name");
    const JsonValue* start = entry.find("start_ms");
    const JsonValue* duration = entry.find("duration_ms");
    if (id == nullptr || !id->is_number() || parent == nullptr ||
        name == nullptr || !name->is_string() || start == nullptr ||
        !start->is_number() || duration == nullptr) {
      return make_error(Errc::bad_message, "trace: malformed span entry");
    }
    Span span;
    span.id = static_cast<SpanId>(id->as_number());
    span.parent = parent->is_number() ? static_cast<SpanId>(parent->as_number())
                                      : kNoSpan;
    span.name = name->as_string();
    span.start_ms = start->as_number();
    span.duration_ms = duration->is_number() ? duration->as_number() : -1;
    spans.push_back(std::move(span));
  }
  return spans;
}

}  // namespace gendpr::obs
