#include "obs/metrics.hpp"

#include <algorithm>

namespace gendpr::obs {

void MetricsRegistry::add_counter(std::string_view name, std::uint64_t delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

std::uint64_t MetricsRegistry::counter(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void MetricsRegistry::set_gauge(std::string_view name, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

void MetricsRegistry::max_gauge(std::string_view name, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else {
    it->second = std::max(it->second, value);
  }
}

std::optional<double> MetricsRegistry::gauge(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) return std::nullopt;
  return it->second;
}

void MetricsRegistry::set_label(std::string_view name,
                                std::string_view value) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = labels_.find(name);
  if (it == labels_.end()) {
    labels_.emplace(std::string(name), std::string(value));
  } else {
    it->second = std::string(value);
  }
}

std::optional<std::string> MetricsRegistry::label(
    std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = labels_.find(name);
  if (it == labels_.end()) return std::nullopt;
  return it->second;
}

void MetricsRegistry::observe(std::string_view name, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    histograms_.emplace(std::string(name), std::vector<double>{value});
  } else {
    it->second.push_back(value);
  }
}

MetricsRegistry::HistogramStats MetricsRegistry::summarize(
    const std::vector<double>& samples) {
  HistogramStats stats;
  stats.count = samples.size();
  if (samples.empty()) return stats;
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  stats.min = sorted.front();
  stats.max = sorted.back();
  for (double v : sorted) stats.sum += v;
  // Nearest-rank percentile: p-th percentile is the sample at
  // ceil(p/100 * count), 1-indexed.
  const auto rank = [&sorted](double p) {
    const std::size_t n = sorted.size();
    std::size_t k = static_cast<std::size_t>(
        p / 100.0 * static_cast<double>(n) + 0.9999999);
    if (k == 0) k = 1;
    if (k > n) k = n;
    return sorted[k - 1];
  };
  stats.p50 = rank(50.0);
  stats.p90 = rank(90.0);
  stats.p99 = rank(99.0);
  return stats;
}

std::optional<MetricsRegistry::HistogramStats> MetricsRegistry::histogram(
    std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) return std::nullopt;
  return summarize(it->second);
}

JsonValue MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  JsonValue counters = JsonValue::object();
  for (const auto& [name, value] : counters_) counters.set(name, value);
  JsonValue gauges = JsonValue::object();
  for (const auto& [name, value] : gauges_) gauges.set(name, value);
  JsonValue labels = JsonValue::object();
  for (const auto& [name, value] : labels_) labels.set(name, value);
  JsonValue histograms = JsonValue::object();
  for (const auto& [name, samples] : histograms_) {
    const HistogramStats stats = summarize(samples);
    JsonValue entry = JsonValue::object();
    entry.set("count", stats.count);
    entry.set("sum", stats.sum);
    entry.set("min", stats.min);
    entry.set("max", stats.max);
    entry.set("p50", stats.p50);
    entry.set("p90", stats.p90);
    entry.set("p99", stats.p99);
    histograms.set(name, std::move(entry));
  }
  JsonValue out = JsonValue::object();
  out.set("counters", std::move(counters));
  out.set("gauges", std::move(gauges));
  out.set("labels", std::move(labels));
  out.set("histograms", std::move(histograms));
  return out;
}

void MetricsRegistry::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  labels_.clear();
  histograms_.clear();
}

}  // namespace gendpr::obs
