// The per-run observability bundle handed through the stack.
//
// One Observability instance lives for the duration of a federation run (or a
// bench iteration): every layer that records telemetry — nodes, coordinator,
// transports, enclaves, pools — receives a pointer to the same bundle. A null
// pointer everywhere means "observability off" and costs nothing on the hot
// paths; the helpers below keep call sites unconditional.
#pragma once

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gendpr::obs {

struct Observability {
  MetricsRegistry metrics;
  TraceRecorder trace;
};

/// Null-tolerant accessors: recorder_of(nullptr) == nullptr feeds straight
/// into ScopedSpan's null-recorder tolerance.
inline TraceRecorder* recorder_of(Observability* obs) noexcept {
  return obs == nullptr ? nullptr : &obs->trace;
}

inline void add_counter(Observability* obs, std::string_view name,
                        std::uint64_t delta = 1) {
  if (obs != nullptr) obs->metrics.add_counter(name, delta);
}

inline void set_gauge(Observability* obs, std::string_view name,
                      double value) {
  if (obs != nullptr) obs->metrics.set_gauge(name, value);
}

inline void max_gauge(Observability* obs, std::string_view name,
                      double value) {
  if (obs != nullptr) obs->metrics.max_gauge(name, value);
}

inline void observe(Observability* obs, std::string_view name, double value) {
  if (obs != nullptr) obs->metrics.observe(name, value);
}

}  // namespace gendpr::obs
